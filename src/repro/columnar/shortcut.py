"""Columnar backing store for the CH index (:class:`ShortcutGraph`).

The dict-of-dict representation pays its cost at ``clone()`` time: every
epoch publish copies ``n`` adjacency dicts plus three tuple-keyed maps.
:class:`ColumnarShortcutGraph` flattens the mutable state into four
pages — one float64/int64 array each for shortcut weights, supports,
witnesses and stored graph-edge weights — and installs the lazy views of
:mod:`repro.columnar.views` as ``_adj`` / ``_sup`` / ``_via`` /
``_edge_w``.  Every inherited algorithm (Equation (<>) evaluation,
DCH±, validation, persistence faces) then runs unchanged, while
``clone()`` becomes a page *share* plus O(1) view construction and the
first write to a shared page triggers a single ``ndarray.copy()``
(page-granular copy-on-write).

The weight-independent skeleton (neighbor lists, slot assignment,
canonical keys) lives in one :class:`ShortcutLayout` shared by every
clone and every epoch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.ch.shortcut_graph import Shortcut, ShortcutGraph, _RecomputeResult
from repro.columnar.views import NO_WITNESS, AdjView, SlotMapView
from repro.errors import IndexError_
from repro.utils.counters import resolve_counter

__all__ = ["ShortcutLayout", "ColumnarShortcutGraph"]

#: Candidate-set size where evaluate_equation's page gathers start to
#: beat its scalar loop (same crossover idea as DCH_KERNEL_MIN_TRIPLES).
_EVAL_GATHER_MIN = 16


class ShortcutLayout:
    """Frozen slot assignment for one shortcut set.

    One slot per canonical shortcut ``(u, v), u < v``; both adjacency
    rows of a shortcut map to the same slot, so a single page write is
    automatically symmetric (the dict backend writes two mirror entries
    instead).  Graph edges get their own slot space.
    """

    __slots__ = (
        "keys",
        "key_slot",
        "row_nbrs",
        "row_slot_of",
        "row_slots",
        "edge_keys",
        "edge_slot",
        "up_slots",
    )

    def __init__(self, adj_rows, up_rows, edge_keys) -> None:
        self.keys: List[Shortcut] = []
        self.key_slot: Dict[Shortcut, int] = {}
        for u, nbrs in enumerate(adj_rows):
            for v in nbrs:
                if u < v:
                    self.key_slot[(u, v)] = len(self.keys)
                    self.keys.append((u, v))
        key_slot = self.key_slot
        self.row_nbrs: List[List[int]] = []
        self.row_slot_of: List[Dict[int, int]] = []
        self.row_slots: List[np.ndarray] = []
        for u, nbrs in enumerate(adj_rows):
            slot_of = {
                v: key_slot[(u, v) if u < v else (v, u)] for v in nbrs
            }
            self.row_nbrs.append(list(nbrs))
            self.row_slot_of.append(slot_of)
            self.row_slots.append(
                np.fromiter(slot_of.values(), dtype=np.int64, count=len(slot_of))
            )
        self.edge_keys: List[Shortcut] = list(edge_keys)
        self.edge_slot: Dict[Shortcut, int] = {
            key: i for i, key in enumerate(self.edge_keys)
        }
        self.up_slots: List[np.ndarray] = [
            np.fromiter(
                (key_slot[(u, v) if u < v else (v, u)] for v in up_rows[u]),
                dtype=np.int64,
                count=len(up_rows[u]),
            )
            for u in range(len(adj_rows))
        ]

    @property
    def num_slots(self) -> int:
        return len(self.keys)


class ColumnarShortcutGraph(ShortcutGraph):
    """A :class:`ShortcutGraph` whose mutable state lives in flat pages.

    Pages: ``_w_arr`` (float64, one slot per canonical shortcut),
    ``_sup_arr`` / ``_via_arr`` (int64, same slots) and ``_edge_arr``
    (float64, one slot per graph edge).  ``_shared`` names the pages
    currently shared with another clone (or mapped read-only from a
    snapshot file); ``_page_for_write`` copies such a page before the
    first mutation lands.
    """

    __slots__ = ("_layout", "_w_arr", "_sup_arr", "_via_arr", "_edge_arr", "_shared")

    _PAGES = ("_w_arr", "_sup_arr", "_via_arr", "_edge_arr")

    def __init__(self, *args, **kwargs) -> None:  # pragma: no cover
        raise TypeError(
            "ColumnarShortcutGraph is built via from_shortcut_graph()"
        )

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def _assemble(
        cls,
        ordering,
        layout: ShortcutLayout,
        up,
        down,
        w_arr: np.ndarray,
        sup_arr: np.ndarray,
        via_arr: np.ndarray,
        edge_arr: np.ndarray,
    ) -> "ColumnarShortcutGraph":
        self = cls.__new__(cls)
        self.ordering = ordering
        self._rank = ordering.rank
        self._up = up
        self._down = down
        self._m_shortcuts = layout.num_slots
        self._layout = layout
        self._w_arr = w_arr
        self._sup_arr = sup_arr
        self._via_arr = via_arr
        self._edge_arr = edge_arr
        self._shared = set()
        self._install_views()
        return self

    def _install_views(self) -> None:
        layout = self._layout
        self._adj = AdjView(
            self, "_w_arr", layout.row_nbrs, layout.row_slot_of, layout.row_slots
        )
        self._sup = SlotMapView(self, "_sup_arr", layout.key_slot, layout.keys, "int")
        self._via = SlotMapView(self, "_via_arr", layout.key_slot, layout.keys, "via")
        self._edge_w = SlotMapView(
            self, "_edge_arr", layout.edge_slot, layout.edge_keys, "float"
        )

    @classmethod
    def from_shortcut_graph(cls, sc: ShortcutGraph) -> "ColumnarShortcutGraph":
        """Convert a dict-backed index; returns *sc* if already columnar."""
        if isinstance(sc, ColumnarShortcutGraph):
            return sc
        layout = ShortcutLayout(sc._adj, sc._up, sc._edge_w)
        m = layout.num_slots
        w_arr = np.empty(m, dtype=np.float64)
        sup_arr = np.zeros(m, dtype=np.int64)
        via_arr = np.full(m, NO_WITNESS, dtype=np.int64)
        for slot, (u, v) in enumerate(layout.keys):
            w_arr[slot] = sc._adj[u][v]
            sup = sc._sup.get((u, v))
            if sup is not None:
                sup_arr[slot] = sup
            via = sc._via.get((u, v))
            if via is not None:
                via_arr[slot] = via
        edge_arr = np.fromiter(
            (sc._edge_w[key] for key in layout.edge_keys),
            dtype=np.float64,
            count=len(layout.edge_keys),
        )
        return cls._assemble(
            sc.ordering, layout, sc._up, sc._down, w_arr, sup_arr, via_arr, edge_arr
        )

    def to_shortcut_graph(self) -> ShortcutGraph:
        """Materialize an equivalent dict-backed :class:`ShortcutGraph`."""
        dup = ShortcutGraph.__new__(ShortcutGraph)
        dup.ordering = self.ordering
        dup._rank = self._rank
        dup._adj = [dict(self._adj[u].items()) for u in range(self.n)]
        dup._up = [list(nbrs) for nbrs in self._up]
        dup._down = [list(nbrs) for nbrs in self._down]
        dup._edge_w = dict(self._edge_w.items())
        dup._sup = dict(self._sup.items())
        dup._via = dict(self._via.items())
        dup._m_shortcuts = self._m_shortcuts
        return dup

    # ------------------------------------------------------------------
    # Copy-on-write pages
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return "columnar"

    def _page_for_write(self, name: str) -> np.ndarray:
        """The page array *name*, privately owned and writable.

        Copies the page first when it is shared with a clone or backed
        by a read-only mmap; afterwards this instance owns it outright.
        """
        arr = getattr(self, name)
        if name in self._shared or not arr.flags.writeable:
            arr = np.array(arr, copy=True)
            setattr(self, name, arr)
            self._shared.discard(name)
        return arr

    def prepare_write(self) -> None:
        """Take private ownership of every page before direct writes."""
        for name in self._PAGES:
            self._page_for_write(name)

    def page_snapshot(self) -> Dict[str, np.ndarray]:
        """Private copies of every mutable page — the O(index size)
        rollback pre-image :func:`repro.reliability.transactions.
        snapshot_index` takes in place of the per-shortcut dict walk."""
        return {
            name: np.array(getattr(self, name), copy=True)
            for name in self._PAGES
        }

    def restore_pages(self, pages: Dict[str, np.ndarray]) -> None:
        """Write a :meth:`page_snapshot` back, undoing any mutation
        since it was captured (shared pages are replaced, not written)."""
        for name, arr in pages.items():
            setattr(self, name, np.array(arr, copy=True))
            self._shared.discard(name)

    def clone(self) -> "ColumnarShortcutGraph":
        """A zero-copy clone: pages are shared, not copied.

        Both sides mark every page as shared; whichever mutates a page
        first pays one ``ndarray.copy()`` for it.  The layout, ordering
        and ``nbr±`` lists are weight independent and always shared.
        """
        dup = ColumnarShortcutGraph.__new__(ColumnarShortcutGraph)
        dup.ordering = self.ordering
        dup._rank = self._rank
        dup._up = self._up
        dup._down = self._down
        dup._m_shortcuts = self._m_shortcuts
        dup._layout = self._layout
        for name in self._PAGES:
            setattr(dup, name, getattr(self, name))
        dup._shared = set(self._PAGES)
        self._shared.update(self._PAGES)
        dup._install_views()
        return dup

    # ------------------------------------------------------------------
    # Hot-path scalar accessors
    # ------------------------------------------------------------------
    # The inherited implementations route through ``self._adj[u][v]``,
    # which on this backend builds a RowView per access.  The overrides
    # below hit the pages through the layout directly — same slots,
    # same ``float()`` decode, so bit-identical results — and keep the
    # maintenance inner loops free of per-access view objects.
    def weight(self, u: int, v: int) -> float:
        try:
            return float(
                self._w_arr[self._layout.key_slot[(u, v) if u < v else (v, u)]]
            )
        except KeyError:
            raise IndexError_(f"no shortcut between {u} and {v}") from None

    def set_weight(self, u: int, v: int, weight: float) -> None:
        slot = self._layout.key_slot.get((u, v) if u < v else (v, u))
        if slot is None:
            raise IndexError_(f"no shortcut between {u} and {v}")
        self._page_for_write("_w_arr")[slot] = weight

    def has_shortcut(self, u: int, v: int) -> bool:
        return ((u, v) if u < v else (v, u)) in self._layout.key_slot

    def support(self, u: int, v: int) -> int:
        return int(
            self._sup_arr[self._layout.key_slot[(u, v) if u < v else (v, u)]]
        )

    def set_support(self, u: int, v: int, value: int) -> None:
        slot = self._layout.key_slot[(u, v) if u < v else (v, u)]
        self._page_for_write("_sup_arr")[slot] = value

    def via(self, u: int, v: int):
        raw = int(
            self._via_arr[self._layout.key_slot[(u, v) if u < v else (v, u)]]
        )
        return None if raw == NO_WITNESS else raw

    def set_via(self, u: int, v: int, witness) -> None:
        slot = self._layout.key_slot[(u, v) if u < v else (v, u)]
        self._page_for_write("_via_arr")[slot] = (
            NO_WITNESS if witness is None else witness
        )

    def edge_weight(self, u: int, v: int) -> float:
        slot = self._layout.edge_slot.get((u, v) if u < v else (v, u))
        if slot is None:
            return math.inf
        return float(self._edge_arr[slot])

    def is_graph_edge(self, u: int, v: int) -> bool:
        return ((u, v) if u < v else (v, u)) in self._layout.edge_slot

    # ------------------------------------------------------------------
    # Vectorized faces
    # ------------------------------------------------------------------
    def upward_weights(self, u: int) -> np.ndarray:
        """``phi(<u, v>)`` for ``v in nbr+(u)``, as one gather."""
        return self._w_arr[self._layout.up_slots[u]]

    def evaluate_equation(self, u, v, counter=None):
        """Equation (<>) with direct page access instead of per-access
        row views; wide candidate sets drop into two page gathers plus
        one vectorized add/min.

        Bit-identical to the scalar base implementation either way:
        each candidate is the same single float64 addition
        ``phi(<t, u>) + phi(<t, v>)``, the minimum is exact, the support
        counts exact ``==`` ties, and the vectorized witness — the first
        *t* in inspection order attaining a value strictly below the
        stored-edge weight — is exactly the last strict improvement of
        the scalar running minimum (nothing before the first occurrence
        of the overall minimum can equal it).
        """
        ops = resolve_counter(counter)
        layout = self._layout
        slot_of_u = layout.row_slot_of[u]
        slot_of_v = layout.row_slot_of[v]
        edge_slot = layout.edge_slot.get((u, v) if u < v else (v, u))
        edge_w = math.inf if edge_slot is None else float(self._edge_arr[edge_slot])
        rank = self._rank
        limit = min(rank[u], rank[v])
        down_u, down_v = self._down[u], self._down[v]
        if len(down_u) <= len(down_v):
            smaller, other = down_u, slot_of_v
        else:
            smaller, other = down_v, slot_of_u
        ts = [t for t in smaller if rank[t] < limit and t in other]
        ops.add("scp_minus_inspect", len(ts))
        w = self._w_arr
        if len(ts) < _EVAL_GATHER_MIN:
            # Scalar loop over the few candidates (the common case);
            # numpy gather setup would dominate at this size.
            best = edge_w
            support = 0 if math.isinf(best) else 1
            witness = None
            for t in ts:
                candidate = float(w[slot_of_u[t]]) + float(w[slot_of_v[t]])
                if candidate < best:
                    best = candidate
                    support = 1
                    witness = t
                elif candidate == best and not math.isinf(candidate):
                    support += 1
            if best == edge_w:
                witness = None
            return _RecomputeResult(weight=best, support=support, via=witness)
        cand = w[np.fromiter((slot_of_u[t] for t in ts), np.int64, len(ts))]
        cand = cand + w[np.fromiter((slot_of_v[t] for t in ts), np.int64, len(ts))]
        low = cand.min()
        if low < edge_w:
            hits = cand == low
            return _RecomputeResult(
                weight=float(low),
                support=int(hits.sum()),
                via=ts[int(np.argmax(hits))],
            )
        best = edge_w
        support = 0 if math.isinf(best) else 1
        if low == best and not math.isinf(best):
            support += int((cand == low).sum())
        return _RecomputeResult(weight=best, support=support, via=None)

    def pair_weight_arrays(self, triples, base: float):
        """The :func:`repro.perf.kernels.relax_arrays` gathers off the
        weight page: ``(base + phi(<x, w>), phi(<w, y>))`` per triple."""
        arc = self._layout.key_slot
        count = len(triples)
        legs = self._w_arr[
            np.fromiter(
                (arc[(x, w) if x < w else (w, x)] for x, w, _y in triples),
                np.int64,
                count,
            )
        ]
        currents = self._w_arr[
            np.fromiter(
                (arc[(w, y) if w < y else (y, w)] for _x, w, y in triples),
                np.int64,
                count,
            )
        ]
        legs += base
        return legs, currents

    def __repr__(self) -> str:
        return (
            f"ColumnarShortcutGraph(n={self.n}, "
            f"shortcuts={self._m_shortcuts})"
        )
