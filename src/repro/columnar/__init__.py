"""Flat numpy-native backing stores for the CH / H2H indexes.

The ``columnar`` backend inverts the repo's original representation:
instead of dict-of-dict adjacency with numpy used only by the batched
kernels, the flat arrays *are* the primary store and the dict shapes
the algorithms consume become lazy views (:mod:`repro.columnar.views`).
Every dynamic facade takes ``backend={"dict", "columnar"}`` at
construction (default from ``$REPRO_BACKEND``), and the two backends
are bit-identical under every workload — enforced by
``tests/test_columnar_conformance.py``.

What the columnar representation buys (docs/columnar.md):

* ``clone()`` — the serving layer's per-epoch cost — becomes a page
  share plus O(1) view objects, with page-granular copy-on-write at the
  first maintenance write;
* snapshots persist as directory bundles of ``.npy`` pages that reopen
  via ``np.load(..., mmap_mode="r")`` without materializing the
  matrices;
* the parallel IncH2H backend swaps shared-memory views in and out of
  the same pages instead of shadow-copying per batch.
"""

from repro.columnar.directed import (
    ColumnarDirectedH2HIndex,
    ColumnarDirectedShortcutGraph,
)
from repro.columnar.h2h import ColumnarH2HIndex, csrify_tree
from repro.columnar.shortcut import ColumnarShortcutGraph, ShortcutLayout

__all__ = [
    "ColumnarDirectedH2HIndex",
    "ColumnarDirectedShortcutGraph",
    "ColumnarH2HIndex",
    "ColumnarShortcutGraph",
    "ShortcutLayout",
    "csrify_tree",
]
