"""Exp-7: scalability of IncH2H w.r.t. |Delta G| (Fig. 2t, Table 3).

The paper grows the update batch from 100 to 1,000,000 edges on US and
observes sub-linear growth of IncH2H's time, explained by Table 3: the
*proportion* of super-shortcuts needing an update saturates (6.6% at
1,000 updates, 48% at 10,000, 98.75% at 1,000,000), so the work per
additional update shrinks.  Batch sizes here span the same relative
range (up to roughly a quarter of the edge set, by which point the
affected proportion is deep into saturation).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.datasets import build_h2h, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.inch2h import inch2h_decrease, inch2h_increase
from repro.utils.timer import Timer
from repro.workloads.updates import increase_batch, restore_batch, sample_edges

__all__ = ["run", "DEFAULT_SIZES"]

#: |Delta G| values (paper: 100 .. 1,000,000 on 29M edges).
DEFAULT_SIZES = (2, 8, 32, 128, 512, 2048)


def run(
    network: str = "US",
    sizes: Sequence[int] = DEFAULT_SIZES,
    profile: str = "default",
    factor: float = 2.0,
) -> ExperimentResult:
    """Figure 2t and Table 3: IncH2H time and affected proportion vs |dG|."""
    graph = build_network(network, profile)
    index = build_h2h(network, profile)
    total = index.num_super_shortcuts()
    result = ExperimentResult(
        exp_id="exp7",
        title="Fig. 2t + Table 3: IncH2H scalability w.r.t. |Delta G|",
    )
    xs, inc_times, proportions = [], [], []
    for i, count in enumerate(sizes):
        count = min(count, graph.m)
        edges = sample_edges(graph, count, seed=7000 + i)
        with Timer() as t_inc:
            changed = inch2h_increase(index, increase_batch(edges, factor))
        inch2h_decrease(index, restore_batch(edges))
        xs.append(count)
        inc_times.append(t_inc.elapsed)
        proportions.append(len(changed) / total)
    result.series.append(
        Series(f"{network}/IncH2H+", xs, inc_times, "|dG|", "seconds")
    )
    result.series.append(
        Series(f"{network}/proportion", xs, proportions, "|dG|", "fraction of SSCs")
    )
    result.tables["Table 3"] = (
        ["|dG|", "proportion updated"],
        [[x, f"{p * 100:.2f}%"] for x, p in zip(xs, proportions)],
    )
    result.notes.append(
        "Expected shape: time grows sub-linearly in |dG| because the "
        "affected proportion saturates (Table 3)."
    )
    return result
