"""Table 2 (dataset statistics) and Table 3 (proportion updated).

Table 2 reports, for every registry network, the vertex and edge counts
and the number of shortcuts (CH) and super-shortcuts (H2H) — the scaled
counterpart of the paper's Table 2.  Table 3 is produced alongside
Exp-7 (:mod:`repro.experiments.exp7`) and re-exported here for the
benchmark that regenerates it stand-alone.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.datasets import DATASETS, build_ch, build_h2h, build_network
from repro.experiments.harness import ExperimentResult
from repro.experiments import exp7

__all__ = ["table2", "table3"]


def table2(
    networks: Sequence[str] = tuple(DATASETS),
    profile: str = "default",
) -> ExperimentResult:
    """Table 2: |V|, |E|, # of SCs and # of SSCs per network."""
    result = ExperimentResult(exp_id="table2", title="Table 2: dataset statistics")
    rows = []
    for name in networks:
        graph = build_network(name, profile)
        ch_index = build_ch(name, profile)
        h2h_index = build_h2h(name, profile)
        rows.append(
            [
                name,
                DATASETS[name].description,
                graph.n,
                graph.m,
                ch_index.num_shortcuts,
                h2h_index.num_super_shortcuts(),
            ]
        )
    result.tables["Table 2"] = (
        ["name", "description", "|V|", "|E|", "# of SCs", "# of SSCs"],
        rows,
    )
    result.notes.append(
        "Scaled analogues of the paper's networks (same names, same size "
        "ordering; see DESIGN.md substitutions)."
    )
    return result


def table3(
    network: str = "US",
    sizes: Sequence[int] = exp7.DEFAULT_SIZES,
    profile: str = "default",
) -> ExperimentResult:
    """Table 3: proportion of super-shortcuts updated w.r.t. |Delta G|."""
    result = exp7.run(network=network, sizes=sizes, profile=profile)
    result.exp_id = "table3"
    result.title = "Table 3: proportion updated w.r.t. |Delta G|"
    return result
