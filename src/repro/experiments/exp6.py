"""Exp-6: scalability of ParIncH2H w.r.t. number of cores (Fig. 2r-2s).

Runs the ParIncH2H scheduling simulation (Section 5.3; see
:mod:`repro.h2h.parallel` for why simulation rather than threads) under
the settings of Exp-1 (Fig. 2r: small batches) and Exp-2 (Fig. 2s:
large batches) and reports the speedup relative to one core for
1..16 cores, as the paper does on US.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.datasets import build_h2h, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.inch2h import inch2h_decrease, inch2h_increase
from repro.h2h.parallel import build_report
from repro.workloads.updates import increase_batch, restore_batch, sample_edges

__all__ = ["run", "DEFAULT_CORES"]

DEFAULT_CORES = (1, 2, 4, 8, 16)


def run(
    network: str = "US",
    cores: Sequence[int] = DEFAULT_CORES,
    small_fractions: Sequence[float] = (0.0004, 0.0018),
    large_fractions: Sequence[float] = (0.002, 0.0052),
    profile: str = "default",
) -> ExperimentResult:
    """Figures 2r-2s: ParIncH2H speedup vs #cores, Exp-1/Exp-2 settings."""
    result = ExperimentResult(
        exp_id="exp6",
        title="Fig. 2r-2s: ParIncH2H speedup vs number of cores",
    )
    graph = build_network(network, profile)
    index = build_h2h(network, profile)
    for figure, fractions in (("2r", small_fractions), ("2s", large_fractions)):
        for fraction in fractions:
            count = max(1, round(fraction * graph.m))
            edges = sample_edges(graph, count, seed=6000 + count)
            work_log: list = []
            inch2h_increase(
                index, increase_batch(edges, 2.0), work_log=work_log
            )
            report = build_report(work_log)
            inch2h_decrease(index, restore_batch(edges))
            result.series.append(
                Series(
                    f"{network}/{figure}/|dG|={count}",
                    list(cores),
                    [report.speedup(p) for p in cores],
                    "cores",
                    "speedup vs 1 core",
                )
            )
    result.notes.append(
        "Expected shape: near-linear speedup, better for larger |dG| "
        "(more super-shortcuts per level to balance across processors)."
    )
    return result
