"""CLI for the experiment harness.

Usage::

    python -m repro.experiments --exp exp1 [--profile small] [--out DIR]
    python -m repro.experiments --exp all --profile small

Each experiment prints its paper-style rows to stdout and writes the
same text to ``DIR/<exp>.txt``; ``--out`` defaults to
``benchmarks/results_default`` so full-profile runs land next to the
benchmark suite's committed outputs instead of littering the
repository root.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from repro.experiments import (
    ablation,
    exp1,
    exp2,
    exp3,
    exp4,
    exp6,
    exp7,
    figure3,
    tables,
)
from repro.experiments.harness import ExperimentResult, format_result

__all__ = ["main", "EXPERIMENTS"]

#: Experiment name -> zero-config callable (profile keyword supported).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": tables.table2,
    "exp1": exp1.run,
    "fig2f": lambda profile="default": exp1.run_fig2f(),
    "exp2": exp2.run,
    "exp3": exp3.run,
    "exp4": exp4.run,
    "figure3": figure3.run,
    "exp6": exp6.run,
    "exp7": exp7.run,
    # Table 3 is produced by exp7 as well; the standalone entry uses a
    # reduced sweep so "--exp all" does not pay for the sweep twice.
    "table3": lambda profile="default": tables.table3(
        sizes=(2, 8, 32), profile=profile
    ),
    "ablation": ablation.run,
}


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--exp",
        required=True,
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' for every one)",
    )
    parser.add_argument(
        "--profile",
        default="default",
        choices=("default", "small"),
        help="dataset scale (small = CI-friendly)",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results_default",
        help="directory for .txt outputs "
        "(default: %(default)s; pass '' to skip writing files)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.exp == "all" else [args.exp]
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for name in names:
        runner = EXPERIMENTS[name]
        result = runner(profile=args.profile)
        text = format_result(result)
        print(text)
        print()
        if args.out:
            path = os.path.join(args.out, f"{name}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")
            print(f"[written to {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
