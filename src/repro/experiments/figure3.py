"""Exp-5: indexing time and index space (Figures 3a-3b).

Builds CH and H2H from scratch on every registry network and reports
construction seconds and index bytes.  Following Section 6.2's
discussion, H2H space is reported in its incremental form (including
the ``sup``/``first`` auxiliaries, about 2x static H2H) — and the
static form is included as its own series for the 2x comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.ch.indexing import ch_indexing
from repro.experiments.datasets import DATASETS, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.indexing import h2h_indexing
from repro.utils.timer import Timer

__all__ = ["run"]


def run(
    networks: Sequence[str] = tuple(DATASETS),
    profile: str = "default",
) -> ExperimentResult:
    """Figures 3a-3b: indexing time and index space for CH and H2H."""
    result = ExperimentResult(
        exp_id="figure3",
        title="Fig. 3a-3b: indexing time and index space",
    )
    xs, ch_time, h2h_time = [], [], []
    ch_space, h2h_space, h2h_static_space = [], [], []
    labels = []
    for i, name in enumerate(networks):
        graph = build_network(name, profile)
        with Timer() as t_ch:
            ch_index = ch_indexing(graph)
        with Timer() as t_h2h:
            h2h_index = h2h_indexing(graph)
        xs.append(i)
        labels.append(name)
        ch_time.append(t_ch.elapsed)
        h2h_time.append(t_h2h.elapsed)
        ch_space.append(ch_index.size_in_bytes(incremental=True))
        h2h_space.append(h2h_index.size_in_bytes(incremental=True))
        h2h_static_space.append(h2h_index.size_in_bytes(incremental=False))
    result.series.append(Series("CH indexing", xs, ch_time, "network", "seconds"))
    result.series.append(Series("H2H indexing", xs, h2h_time, "network", "seconds"))
    result.series.append(Series("CH space", xs, ch_space, "network", "bytes"))
    result.series.append(Series("H2H space", xs, h2h_space, "network", "bytes"))
    result.series.append(
        Series("H2H space (static)", xs, h2h_static_space, "network", "bytes")
    )
    result.tables["networks"] = (
        ["index", "network"], [[i, n] for i, n in enumerate(labels)]
    )
    result.notes.append(
        "Expected shape: H2H construction 2-5x slower than CH; H2H space "
        "far larger than CH; incremental H2H ~2x static H2H."
    )
    return result
