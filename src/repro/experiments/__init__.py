"""The experiment harness: regenerates every table and figure of Section 6.

Each ``expN`` module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.harness.ExperimentResult`; the CLI
(``python -m repro.experiments``) pretty-prints them, and the
``benchmarks/`` suite wraps them in pytest-benchmark fixtures.
"""

from repro.experiments.datasets import (
    DATASETS,
    PROFILES,
    DatasetSpec,
    build_ch,
    build_h2h,
    build_network,
)
from repro.experiments.harness import ExperimentResult, Series

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "ExperimentResult",
    "PROFILES",
    "Series",
    "build_ch",
    "build_h2h",
    "build_network",
]
