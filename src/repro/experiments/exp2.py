"""Exp-2: efficiency of DCH (Figures 2g-2i).

Same increase-then-restore protocol as Exp-1, but for the CH index and
with much larger batches (the paper uses 20,000..180,000 edges; CH is
far less sensitive to changes than H2H, so it takes two orders of
magnitude more updates to affect ~10% of the shortcuts).  The
recompute-from-scratch baseline is CHIndexing restricted to the weight
computation (the shortcut *set* is weight independent).
"""

from __future__ import annotations

from typing import Sequence

from repro.ch.dch import dch_decrease, dch_increase
from repro.ch.indexing import ch_indexing
from repro.experiments.datasets import build_ch, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.utils.timer import Timer
from repro.workloads.updates import increase_batch, restore_batch, sample_edges

__all__ = ["run", "DEFAULT_NETWORKS", "DEFAULT_FRACTIONS"]

#: Networks of Figures 2g-2h.
DEFAULT_NETWORKS = ("CUS", "US")

#: |Delta G| as fractions of |E|.  The paper's absolute counts
#: (20,000..180,000 of 17-29M arcs) drive the *affected shortcut share*
#: to ~8-10% at the top of the range on continent-scale graphs; on the
#: scaled networks the same share is reached with these fractions (the
#: affected share, Fig. 2i, is the regime that matters for the
#: DCH-vs-rebuild crossover).
DEFAULT_FRACTIONS = (0.0002, 0.0006, 0.001, 0.0014, 0.002,
                     0.0028, 0.0036, 0.0044, 0.0052)


def rebuild_seconds(name: str, profile: str) -> float:
    """The from-scratch baseline: recompute all shortcut weights."""
    graph = build_network(name, profile)
    cached = build_ch(name, profile)
    with Timer() as timer:
        ch_indexing(graph, cached.ordering)
    return timer.elapsed


def run(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    profile: str = "default",
    factor: float = 2.0,
) -> ExperimentResult:
    """Figures 2g-2i: DCH vs recomputing from scratch, varying |Delta G|."""
    result = ExperimentResult(
        exp_id="exp2",
        title="Fig. 2g-2i: DCH vs CHIndexing, varying |Delta G|",
    )
    for name in networks:
        graph = build_network(name, profile)
        index = build_ch(name, profile)
        total_sc = index.num_shortcuts
        baseline = rebuild_seconds(name, profile)
        sizes, inc_times, dec_times, affected = [], [], [], []
        for i, fraction in enumerate(fractions):
            count = max(1, round(fraction * graph.m))
            edges = sample_edges(graph, count, seed=2000 + i)
            with Timer() as t_inc:
                changed = dch_increase(index, increase_batch(edges, factor))
            with Timer() as t_dec:
                dch_decrease(index, restore_batch(edges))
            sizes.append(count)
            inc_times.append(t_inc.elapsed)
            dec_times.append(t_dec.elapsed)
            affected.append(len(changed) / total_sc)
        result.series.append(
            Series(f"{name}/DCH+", sizes, inc_times, "|dG|", "seconds")
        )
        result.series.append(
            Series(f"{name}/DCH-", sizes, dec_times, "|dG|", "seconds")
        )
        result.series.append(
            Series(
                f"{name}/CHIndexing", sizes, [baseline] * len(sizes),
                "|dG|", "seconds",
            )
        )
        result.series.append(
            Series(f"{name}/affected", sizes, affected, "|dG|", "fraction of SCs")
        )
    result.notes.append(
        "Expected shape: CH is much less sensitive than H2H (Fig. 2i vs "
        "2e); DCH beats CHIndexing even when ~10% of shortcuts change."
    )
    return result
