"""Ablation studies for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but the natural follow-ups a
practitioner asks:

* **ordering quality** — how much worse do static-degree or random
  contraction orders make the index (shortcut count, super-shortcut
  count, build time)?
* **support counters** — how many Equation (<>) / Equation (*) term
  evaluations do the counters save (DCH vs UE; IncH2H vs DTDHL)?
* **batching** — how much cheaper is one batch of ``k`` updates than
  ``k`` one-by-one updates (the amortization IncH2H gets from shared
  propagation)?
* **coalescing** — how much a repeated-edge re-report stream saves
  when merged to its per-edge net effect first
  (:func:`repro.perf.coalesce.coalesce_updates`, docs/performance.md)
  instead of paying one full propagation per raw update.
"""

from __future__ import annotations

from typing import Sequence

from repro.ch.dch import dch_increase
from repro.ch.indexing import ch_indexing
from repro.ch.ue import ue_update
from repro.experiments.datasets import build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.dtdhl import dtdhl_increase
from repro.h2h.inch2h import inch2h_decrease, inch2h_increase
from repro.h2h.indexing import h2h_indexing
from repro.h2h.tree import TreeDecomposition
from repro.order.min_degree import minimum_degree_ordering
from repro.order.ordering import degree_ordering, random_ordering
from repro.utils.counters import OpCounter
from repro.utils.timer import Timer
from repro.workloads.updates import increase_batch, restore_batch, sample_edges

__all__ = [
    "run_ordering",
    "run_support_counters",
    "run_batching",
    "run_coalescing",
    "run",
]


def run_ordering(network: str = "NY", profile: str = "default") -> ExperimentResult:
    """Index quality under min-degree vs degree vs random orders.

    The naive orders produce *drastically* denser fills (that is the
    point), so on graphs beyond ~1500 vertices they are skipped rather
    than letting the ablation dominate the whole experiment run.
    """
    graph = build_network(network, profile)
    result = ExperimentResult(
        exp_id="ablation-ordering",
        title=f"Contraction-order quality on {network}",
    )
    candidates = [("min_degree", minimum_degree_ordering(graph))]
    if graph.n <= 1500:
        candidates.append(("degree", degree_ordering(graph)))
        candidates.append(("random", random_ordering(graph, seed=1)))
    else:
        result.notes.append(
            f"degree/random orderings skipped at n={graph.n} (their fill "
            "is orders of magnitude denser; run with the small profile "
            "to compare all three)"
        )
    rows = []
    for label, ordering in candidates:
        with Timer() as timer:
            sc = ch_indexing(graph, ordering)
        tree = TreeDecomposition(sc)
        rows.append(
            [label, sc.num_shortcuts, tree.num_super_shortcuts(),
             tree.height, round(timer.elapsed, 3)]
        )
    result.tables["orderings"] = (
        ["ordering", "# of SCs", "# of SSCs", "tree height", "build (s)"],
        rows,
    )
    result.notes.append(
        "The min-degree heuristic (the paper's choice) should dominate "
        "both baselines on every column."
    )
    return result


def run_support_counters(
    network: str = "CAL",
    profile: str = "default",
    batch_size: int = 25,
) -> ExperimentResult:
    """Equation-term evaluations saved by the support counters."""
    graph = build_network(network, profile)
    batch = increase_batch(sample_edges(graph, batch_size, seed=1), 2.0)
    result = ExperimentResult(
        exp_id="ablation-sup",
        title=f"Support-counter savings on {network} (|dG|={batch_size})",
    )
    ops_dch, ops_ue = OpCounter(), OpCounter()
    dch_increase(ch_indexing(graph), batch, ops_dch)
    ue_update(ch_indexing(graph), batch, ops_ue)
    ops_inc, ops_dtdhl = OpCounter(), OpCounter()
    inch2h_increase(h2h_indexing(graph), batch, ops_inc)
    dtdhl_increase(h2h_indexing(graph), batch, ops_dtdhl)
    result.tables["term evaluations"] = (
        ["algorithm", "equation terms", "total ops"],
        [
            ["DCH+", ops_dch["scp_minus_inspect"], ops_dch.total()],
            ["UE", ops_ue["scp_minus_inspect"], ops_ue.total()],
            ["IncH2H+", ops_inc["star_term"], ops_inc.total()],
            ["DTDHL+", ops_dtdhl["star_term"], ops_dtdhl.total()],
        ],
    )
    return result


def run_batching(
    network: str = "CUS",
    profile: str = "default",
    sizes: Sequence[int] = (1, 4, 16, 64),
) -> ExperimentResult:
    """Batched vs one-by-one IncH2H: amortization of shared propagation."""
    graph = build_network(network, profile)
    index = h2h_indexing(graph)
    result = ExperimentResult(
        exp_id="ablation-batching",
        title=f"Batched vs one-by-one IncH2H on {network}",
    )
    xs, batched, one_by_one = [], [], []
    for i, size in enumerate(sizes):
        edges = sample_edges(graph, size, seed=200 + i)
        ups = increase_batch(edges, 2.0)
        downs = restore_batch(edges)
        with Timer() as t_batch:
            inch2h_increase(index, ups)
        inch2h_decrease(index, downs)
        with Timer() as t_single:
            for update in ups:
                inch2h_increase(index, [update])
        inch2h_decrease(index, downs)
        xs.append(size)
        batched.append(t_batch.elapsed)
        one_by_one.append(t_single.elapsed)
    result.series.append(Series("batched", xs, batched, "|dG|", "seconds"))
    result.series.append(
        Series("one-by-one", xs, one_by_one, "|dG|", "seconds")
    )
    result.notes.append(
        "Quantifies how much propagation the updates share: with "
        "spatially scattered random edges the affected regions barely "
        "overlap and batching is roughly cost-neutral; updates clustered "
        "on the same subnetwork share most of their propagation."
    )
    return result


def run_coalescing(
    network: str = "CAL",
    profile: str = "default",
    stream_edges: int = 12,
    reports: Sequence[int] = (1, 2, 4, 8),
) -> ExperimentResult:
    """Coalesced vs one-publish-per-update application of re-report streams.

    Each point repeats the same ``stream_edges`` sampled edges ``r``
    times with growing weights — the rush-hour feed shape — and prices
    the stream two ways on clones of one built oracle: one
    ``DynamicH2H.apply`` per raw update, vs a single
    ``apply(stream, coalesce=True)``.  Both end in bit-identical state
    (``tests/test_perf_coalesce.py``); the ablation measures only what
    the merge saves, which grows linearly with the re-report rate.
    """
    from repro.core.dynamic import DynamicH2H

    graph = build_network(network, profile)
    oracle = DynamicH2H(graph)
    result = ExperimentResult(
        exp_id="ablation-coalescing",
        title=f"Coalesced vs per-update application on {network}",
    )
    edges = [
        (u, v) for u, v, _w in sample_edges(graph, stream_edges, seed=300)
    ]
    xs, sequential, coalesced = [], [], []
    for r in reports:
        stream = [
            ((u, v), graph.weight(u, v) * (1.2 + 0.4 * rep))
            for rep in range(r)
            for u, v in edges
        ]
        seq = oracle.clone()
        with Timer() as t_seq:
            for update in stream:
                seq.apply([update])
        bat = oracle.clone()
        with Timer() as t_bat:
            bat.apply(stream, coalesce=True)
        xs.append(r)
        sequential.append(t_seq.elapsed)
        coalesced.append(t_bat.elapsed)
    result.series.append(
        Series("one publish per update", xs, sequential,
               "re-reports per edge", "seconds")
    )
    result.series.append(
        Series("coalesced", xs, coalesced,
               "re-reports per edge", "seconds")
    )
    result.notes.append(
        "The coalesced cost is flat in the re-report rate (the net batch "
        "never grows past one update per edge) while the per-update cost "
        "is linear in it."
    )
    return result


def run(profile: str = "default") -> ExperimentResult:
    """All four ablations, merged for the CLI."""
    merged = ExperimentResult(exp_id="ablation", title="Design ablations")
    for part in (run_ordering(profile=profile),
                 run_support_counters(profile=profile),
                 run_batching(profile=profile),
                 run_coalescing(profile=profile)):
        merged.series += part.series
        merged.tables.update(part.tables)
        merged.notes += part.notes
    return merged
