"""Exp-1: efficiency of IncH2H (Figures 2a-2f).

Protocol (Section 6.1): sample ``|Delta G|`` edges, double their weights
(IncH2H+ timed), restore them (IncH2H- timed), and compare with the time
H2HIndexing takes to recompute the weight-dependent part of the index
(shortcut weights + distance arrays) from scratch.  Figure 2e reports
the fraction of super-shortcuts whose value changes; Figure 2f analyzes
the traffic trace (here: the synthetic :class:`~repro.graph.traffic.TrafficModel`).

Update-batch sizes are per-network fractions of ``|E|`` (the paper uses
absolute counts 200..1800 on continent-scale graphs; fractions keep the
affected-index share — the quantity that matters for the crossover — in
the same regime on the scaled networks, reaching ~10%+ at the top end).
"""

from __future__ import annotations

from typing import Sequence

from repro.ch.indexing import ch_indexing
from repro.experiments.datasets import build_h2h, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.graph.traffic import TrafficModel
from repro.h2h.inch2h import inch2h_decrease, inch2h_increase
from repro.h2h.indexing import fill_distance_arrays
from repro.utils.timer import Timer
from repro.workloads.updates import increase_batch, restore_batch, sample_edges

__all__ = ["run", "run_fig2f", "DEFAULT_NETWORKS", "DEFAULT_FRACTIONS"]

#: Networks of Figures 2a-2d.
DEFAULT_NETWORKS = ("ENG", "CAL", "CUS", "US")

#: |Delta G| as fractions of |E|, nine points like the paper's 200..1800.
DEFAULT_FRACTIONS = (0.0002, 0.0004, 0.0006, 0.0008, 0.0010,
                     0.0012, 0.0014, 0.0016, 0.0018)


def rebuild_seconds(name: str, profile: str) -> float:
    """The recompute-from-scratch baseline: shortcut weights + distance
    arrays.  The weight-independent parts of H2H (tree decomposition,
    ancestor/position arrays) are excluded, following the paper's
    measurement protocol for Exp-1 — the cached tree is reused because
    it is identical for the same ordering."""
    graph = build_network(name, profile)
    cached = build_h2h(name, profile)
    with Timer() as timer:
        sc = ch_indexing(graph, cached.sc.ordering)
        fill_distance_arrays(sc, cached.tree)
    return timer.elapsed


def run(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    profile: str = "default",
    factor: float = 2.0,
) -> ExperimentResult:
    """Figures 2a-2e: IncH2H vs recomputing from scratch, varying |Delta G|."""
    result = ExperimentResult(
        exp_id="exp1",
        title="Fig. 2a-2e: IncH2H vs H2HIndexing, varying |Delta G|",
    )
    for name in networks:
        graph = build_network(name, profile)
        index = build_h2h(name, profile)
        total_ssc = index.num_super_shortcuts()
        baseline = rebuild_seconds(name, profile)
        sizes, inc_times, dec_times, affected = [], [], [], []
        for i, fraction in enumerate(fractions):
            count = max(1, round(fraction * graph.m))
            edges = sample_edges(graph, count, seed=1000 + i)
            with Timer() as t_inc:
                changed = inch2h_increase(index, increase_batch(edges, factor))
            with Timer() as t_dec:
                inch2h_decrease(index, restore_batch(edges))
            sizes.append(count)
            inc_times.append(t_inc.elapsed)
            dec_times.append(t_dec.elapsed)
            affected.append(len(changed) / total_ssc)
        result.series.append(
            Series(f"{name}/IncH2H+", sizes, inc_times, "|dG|", "seconds")
        )
        result.series.append(
            Series(f"{name}/IncH2H-", sizes, dec_times, "|dG|", "seconds")
        )
        result.series.append(
            Series(
                f"{name}/H2HIndexing",
                sizes,
                [baseline] * len(sizes),
                "|dG|",
                "seconds",
            )
        )
        result.series.append(
            Series(f"{name}/affected", sizes, affected, "|dG|", "fraction of SSCs")
        )
    result.notes.append(
        "Expected shape: IncH2H- <= IncH2H+ < H2HIndexing, gap narrowing "
        "as |dG| grows; affected fraction (Fig. 2e) reaches ~10%+ at the "
        "top of the range."
    )
    return result


def run_fig2f(
    thresholds: Sequence[float] = (1.5, 2.0, 3.0),
    n_roads: int = 200,
    days: int = 7,
    seed: int = 7,
) -> ExperimentResult:
    """Figure 2f: updates per minute per road vs time of day.

    Substitutes the synthetic diurnal traffic model for the paper's
    proprietary England trace (see DESIGN.md); reports, for each
    threshold ``c``, the updates/minute/road series over the day and the
    overall average (the paper's headline: <= 0.0004 most of the time).
    """
    model = TrafficModel(n_roads=n_roads, days=days, seed=seed)
    result = ExperimentResult(
        exp_id="exp1-fig2f",
        title="Fig. 2f: update rate vs time of day (synthetic trace)",
    )
    for c in thresholds:
        observations = model.update_rate_by_minute(c, bucket_minutes=60)
        result.series.append(
            Series(
                f"c={c}",
                [obs.minute_of_day / 60.0 for obs in observations],
                [obs.updates_per_minute_per_road for obs in observations],
                "hour of day",
                "updates/min/road",
            )
        )
        result.notes.append(
            f"c={c}: overall average "
            f"{model.average_update_rate(c):.6f} updates/min/road"
        )
    return result
