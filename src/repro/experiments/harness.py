"""Shared result types and formatting for the experiment harness.

Every experiment returns an :class:`ExperimentResult` — a set of named
:class:`Series` (one per curve of the paper's figure, or one per column
of the table) plus free-form notes.  ``format_result`` renders the rows
the paper reports so EXPERIMENTS.md and the CLI output read the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Series", "ExperimentResult", "format_table", "format_result"]


@dataclass
class Series:
    """One curve: aligned x/y vectors plus labeling."""

    name: str
    x: List[float]
    y: List[float]
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    exp_id: str  #: e.g. "exp1" or "table2"
    title: str  #: the paper artifact, e.g. "Fig. 2a-2f"
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Optional row-oriented tables: name -> (headers, rows).
    tables: Dict[str, tuple] = field(default_factory=dict)

    def series_by_name(self, name: str) -> Series:
        """Look up a series; raises KeyError with the known names."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(
            f"no series {name!r}; known: {[s.name for s in self.series]}"
        )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], width: int = 14
) -> str:
    """Fixed-width text table (monospace-friendly)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                text = "0"
            elif abs(cell) >= 1000 or abs(cell) < 0.001:
                text = f"{cell:.3e}"
            else:
                text = f"{cell:.4g}"
        else:
            text = str(cell)
        return text[:width].rjust(width)

    lines = ["".join(fmt(h) for h in headers)]
    lines.append("-" * (width * len(headers)))
    lines.extend("".join(fmt(c) for c in row) for row in rows)
    return "\n".join(lines)


def format_result(result: ExperimentResult, x_digits: Optional[int] = None) -> str:
    """Render an :class:`ExperimentResult` as the paper-style rows."""
    blocks = [f"== {result.exp_id}: {result.title} =="]
    # Group series sharing the same x vector into one table.
    grouped: Dict[tuple, List[Series]] = {}
    for s in result.series:
        key = tuple(s.x)
        grouped.setdefault(key, []).append(s)
    for x_key, group in grouped.items():
        headers = [group[0].x_label] + [s.name for s in group]
        rows = []
        for i, x in enumerate(x_key):
            x_val = round(x, x_digits) if x_digits is not None else x
            rows.append([x_val] + [s.y[i] for s in group])
        blocks.append(format_table(headers, rows))
    for name, (headers, rows) in result.tables.items():
        blocks.append(f"-- {name} --")
        blocks.append(format_table(headers, rows))
    for note in result.notes:
        blocks.append(f"note: {note}")
    return "\n\n".join(blocks)
