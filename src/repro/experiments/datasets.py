"""The nine-network dataset registry (the paper's Table 2, scaled).

The paper evaluates on nine real road networks from DIMACS and
Geofabrik, 0.26M-24M vertices.  Pure Python cannot index those sizes,
so the registry carries synthetic analogues (see
:func:`repro.graph.generators.road_network` and DESIGN.md's
substitution table) with the same names and the same *relative* size
ordering at two scales:

* ``default`` — about 1/100 of the paper's vertex counts (1/1000 for
  the continental networks); used by the CLI and EXPERIMENTS.md;
* ``small`` — about 1/5 of ``default``; used by the pytest benchmarks
  so a full benchmark run stays in CI-friendly time.

Built networks and indexes are cached per (name, profile) within the
process, mirroring how the paper builds each index once and reuses it
across experiments.  Callers that mutate weights must restore them
(the increase-then-restore protocol does this by construction) or use
:func:`fresh_copy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.ch.indexing import ch_indexing
from repro.ch.shortcut_graph import ShortcutGraph
from repro.errors import ReproError
from repro.graph.generators import road_network
from repro.graph.graph import RoadNetwork
from repro.h2h.index import H2HIndex
from repro.h2h.indexing import h2h_indexing

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "PROFILES",
    "build_network",
    "build_ch",
    "build_h2h",
    "fresh_copy",
    "clear_cache",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One named road network of the registry."""

    name: str
    description: str
    paper_vertices: str  #: the real network's |V| (for documentation)
    n_default: int
    n_small: int
    seed: int


#: The nine networks of Table 2, in the paper's size order.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("NY", "New York City", "0.26M", 2_600, 520, 101),
        DatasetSpec("COL", "Colorado", "0.43M", 4_300, 860, 102),
        DatasetSpec("FLA", "Florida", "1.07M", 7_000, 1_400, 103),
        DatasetSpec("CAL", "California and Nevada", "1.89M", 9_500, 1_900, 104),
        DatasetSpec("ENG", "England", "2.35M", 10_500, 2_100, 109),
        DatasetSpec("EUS", "Eastern US", "3.60M", 12_000, 2_400, 105),
        DatasetSpec("WUS", "Western US", "6.26M", 15_000, 3_000, 106),
        DatasetSpec("CUS", "Central US", "14.08M", 20_000, 4_000, 107),
        DatasetSpec("US", "Full US", "23.95M", 26_000, 5_200, 108),
    )
}

#: Valid profile names -> attribute of DatasetSpec holding the size.
PROFILES: Tuple[str, ...] = ("default", "small")

_network_cache: Dict[Tuple[str, str], RoadNetwork] = {}
_ch_cache: Dict[Tuple[str, str], ShortcutGraph] = {}
_h2h_cache: Dict[Tuple[str, str], H2HIndex] = {}


def _spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None


def _size(spec: DatasetSpec, profile: str) -> int:
    if profile == "default":
        return spec.n_default
    if profile == "small":
        return spec.n_small
    raise ReproError(f"unknown profile {profile!r}; known: {PROFILES}")


def build_network(name: str, profile: str = "default") -> RoadNetwork:
    """The named network (cached; do not mutate — use :func:`fresh_copy`)."""
    key = (name, profile)
    if key not in _network_cache:
        spec = _spec(name)
        _network_cache[key] = road_network(_size(spec, profile), seed=spec.seed)
    return _network_cache[key]


def fresh_copy(name: str, profile: str = "default") -> RoadNetwork:
    """An independent mutable copy of the named network."""
    return build_network(name, profile).copy()


def build_ch(name: str, profile: str = "default") -> ShortcutGraph:
    """The CH index of the named network (cached)."""
    key = (name, profile)
    if key not in _ch_cache:
        _ch_cache[key] = ch_indexing(build_network(name, profile))
    return _ch_cache[key]


def build_h2h(name: str, profile: str = "default") -> H2HIndex:
    """The H2H index of the named network (cached).

    Shares nothing with :func:`build_ch`'s index, so the two oracles can
    be updated independently in comparative experiments.
    """
    key = (name, profile)
    if key not in _h2h_cache:
        _h2h_cache[key] = h2h_indexing(build_network(name, profile))
    return _h2h_cache[key]


def clear_cache() -> None:
    """Drop all cached networks and indexes (tests use this)."""
    _network_cache.clear()
    _ch_cache.clear()
    _h2h_cache.clear()
