"""Exp-4: per-update time of the maintenance algorithms (Fig. 2j-2k, 2o-2q).

Following the paper: eight update groups per network; group ``i``
multiplies sampled edge weights by ``i + 1`` and restores them, with the
updates applied *one by one*; the figures report the average time per
update.  Figures 2o-2q compare DCH, IncH2H and DTDHL; Figures 2j-2k
(referenced from Section 6.2) compare UE against DCH under the same
settings — both are produced here.

Every algorithm runs against its own index instance (DTDHL leaves
supports stale by design, and interleaving one-by-one updates across
algorithms on shared state would invalidate the comparison).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.ch.dch import dch_decrease, dch_increase
from repro.ch.indexing import ch_indexing
from repro.ch.ue import ue_update
from repro.experiments.datasets import build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.dtdhl import dtdhl_decrease, dtdhl_increase
from repro.h2h.inch2h import inch2h_decrease, inch2h_increase
from repro.h2h.indexing import h2h_indexing
from repro.utils.timer import Timer
from repro.workloads.updates import sample_edges

__all__ = ["run", "DEFAULT_NETWORKS", "DEFAULT_GROUPS"]

#: Networks of Figures 2o-2q (and 2j-2k).
DEFAULT_NETWORKS = ("WUS", "CUS", "US")

#: Weight multipliers per group: group i uses factor i + 1.
DEFAULT_GROUPS = (2, 3, 4, 5, 6, 7, 8, 9)


def _one_by_one(apply: Callable, updates: List) -> float:
    """Average seconds per update, applied one at a time."""
    with Timer() as timer:
        for update in updates:
            apply([update])
    return timer.elapsed / len(updates)


def run(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    factors: Sequence[int] = DEFAULT_GROUPS,
    updates_per_group: int = 15,
    profile: str = "default",
    include_dtdhl: bool = True,
    include_ue: bool = True,
) -> ExperimentResult:
    """Figures 2j-2k and 2o-2q: average per-update time by weight factor."""
    result = ExperimentResult(
        exp_id="exp4",
        title="Fig. 2j-2k, 2o-2q: per-update time (DCH / UE / IncH2H / DTDHL)",
    )
    for name in networks:
        graph = build_network(name, profile)
        # Dedicated instances per algorithm family.
        ch_dch = ch_indexing(graph)
        ch_ue = ch_indexing(graph) if include_ue else None
        h2h_inc = h2h_indexing(graph)
        h2h_dtdhl = h2h_indexing(graph) if include_dtdhl else None

        xs = list(factors)
        rows = {
            "DCH+": [], "DCH-": [], "IncH2H+": [], "IncH2H-": [],
            "UE+": [], "UE-": [], "DTDHL+": [], "DTDHL-": [],
        }
        for gi, factor in enumerate(factors):
            edges = sample_edges(graph, updates_per_group, seed=4000 + gi)
            ups = [((u, v), w * factor) for u, v, w in edges]
            downs = [((u, v), float(w)) for u, v, w in edges]

            rows["DCH+"].append(_one_by_one(lambda b: dch_increase(ch_dch, b), ups))
            rows["DCH-"].append(_one_by_one(lambda b: dch_decrease(ch_dch, b), downs))
            rows["IncH2H+"].append(
                _one_by_one(lambda b: inch2h_increase(h2h_inc, b), ups)
            )
            rows["IncH2H-"].append(
                _one_by_one(lambda b: inch2h_decrease(h2h_inc, b), downs)
            )
            if include_ue:
                rows["UE+"].append(_one_by_one(lambda b: ue_update(ch_ue, b), ups))
                rows["UE-"].append(_one_by_one(lambda b: ue_update(ch_ue, b), downs))
            if include_dtdhl:
                rows["DTDHL+"].append(
                    _one_by_one(lambda b: dtdhl_increase(h2h_dtdhl, b), ups)
                )
                rows["DTDHL-"].append(
                    _one_by_one(lambda b: dtdhl_decrease(h2h_dtdhl, b), downs)
                )
        for label, ys in rows.items():
            if ys:
                result.series.append(
                    Series(f"{name}/{label}", xs, ys, "weight factor", "s/update")
                )
    result.notes.append(
        "Expected shape: DCH is 2-3 orders of magnitude faster than "
        "IncH2H (different oracles, Section 6.2); DTDHL+ ~6x and DTDHL- "
        "~2x slower than IncH2H+/-; UE slower than DCH (Fig. 2j-2k)."
    )
    return result
