"""Exp-3: query time of CH vs H2H (Figures 2l-2n).

Queries are grouped by distance (``Q_1 .. Q_10``, each group's pairs
twice as far apart as the previous one, following [49]); the figures
report the average query time per group.  The paper's findings to
reproduce: CH query time grows with distance while H2H's stays flat,
and H2H is one to three orders of magnitude faster.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.ch.query import ch_distance
from repro.experiments.datasets import build_ch, build_h2h, build_network
from repro.experiments.harness import ExperimentResult, Series
from repro.h2h.query import h2h_distance
from repro.workloads.queries import query_groups

__all__ = ["run", "DEFAULT_NETWORKS"]

#: Networks of Figures 2l-2n.
DEFAULT_NETWORKS = ("WUS", "CUS", "US")


def _average_seconds(fn, index, pairs) -> float:
    """Average seconds per query of ``fn(index, s, t)`` over *pairs*."""
    start = time.perf_counter()
    for s, t in pairs:
        fn(index, s, t)
    return (time.perf_counter() - start) / len(pairs)


def run(
    networks: Sequence[str] = DEFAULT_NETWORKS,
    queries_per_group: int = 100,
    profile: str = "default",
) -> ExperimentResult:
    """Figures 2l-2n: per-group average query time, CH vs H2H."""
    result = ExperimentResult(
        exp_id="exp3",
        title="Fig. 2l-2n: query time by distance group, CH vs H2H",
    )
    for name in networks:
        graph = build_network(name, profile)
        ch_index = build_ch(name, profile)
        h2h_index = build_h2h(name, profile)
        groups = query_groups(graph, queries_per_group, seed=300)
        xs, ch_times, h2h_times = [], [], []
        for group_id in sorted(groups):
            pairs = groups[group_id]
            if not pairs:
                continue
            xs.append(group_id)
            ch_times.append(_average_seconds(ch_distance, ch_index, pairs))
            h2h_times.append(_average_seconds(h2h_distance, h2h_index, pairs))
        result.series.append(
            Series(f"{name}/CH", xs, ch_times, "query group Qi", "seconds/query")
        )
        result.series.append(
            Series(f"{name}/H2H", xs, h2h_times, "query group Qi", "seconds/query")
        )
        # Sanity: both oracles must agree on every sampled pair.
        for group_id, pairs in groups.items():
            for s, t in pairs[:5]:
                d_ch = ch_distance(ch_index, s, t)
                d_h2h = h2h_distance(h2h_index, s, t)
                if d_ch != d_h2h:
                    result.notes.append(
                        f"MISMATCH on {name} Q{group_id} ({s},{t}): "
                        f"CH={d_ch} H2H={d_h2h}"
                    )
    result.notes.append(
        "Expected shape: CH query time grows with the distance group; "
        "H2H stays flat and is 1-3 orders of magnitude faster."
    )
    return result
