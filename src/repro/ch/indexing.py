"""CHIndexing — Algorithm 1 of the paper.

Builds the shortcut graph ``sc(G)`` by contracting vertices in the order
``pi``: when ``u`` is contracted, every pair of its higher-ranked
neighbors in the *current* shortcut graph receives (or relaxes) a
shortcut weighted ``phi(<u, v>) + phi(<u, w>)``.  The resulting weights
satisfy Equation (<>) ([39], restated in Section 2).

The paper uses the minimum degree heuristic to produce ``pi`` on the fly;
here the ordering is computed first (:func:`repro.order.minimum_degree_ordering`)
and contraction replays it, which yields the identical index and keeps
the two concerns testable in isolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import OrderingError
from repro.graph.graph import RoadNetwork
from repro.order.min_degree import minimum_degree_ordering
from repro.order.ordering import Ordering
from repro.ch.shortcut_graph import ShortcutGraph, edge_weight_map
from repro.utils.counters import OpCounter, resolve_counter

__all__ = ["ch_indexing"]


def ch_indexing(
    graph: RoadNetwork,
    ordering: Optional[Ordering] = None,
    counter: Optional[OpCounter] = None,
    with_support: bool = True,
) -> ShortcutGraph:
    """Construct the CH index of *graph* (Algorithm 1).

    Parameters
    ----------
    graph:
        The road network.
    ordering:
        The contraction order ``pi``; computed with the minimum degree
        heuristic when omitted (the paper's default, following [39]).
    counter:
        Optional :class:`OpCounter`; contraction work is tallied under
        ``"contract_pair"`` and support construction under
        ``"scp_minus_inspect"``.
    with_support:
        Also build the ``sup``/``via`` auxiliaries needed by the
        incremental algorithms (adds one Equation (<>) pass).

    Returns
    -------
    ShortcutGraph

    Example
    -------
    >>> from repro.graph import grid_network
    >>> sc = ch_indexing(grid_network(3, 3, seed=1))
    >>> sc.num_shortcuts >= grid_network(3, 3, seed=1).m
    True
    """
    if ordering is None:
        ordering = minimum_degree_ordering(graph)
    if len(ordering) != graph.n:
        raise OrderingError(
            f"ordering covers {len(ordering)} vertices, graph has {graph.n}"
        )
    ops = resolve_counter(counter)
    rank = ordering.rank

    # Working adjacency: starts as a copy of G, accumulates shortcuts.
    adj: List[Dict[int, float]] = [
        {v: w for v, w in graph.neighbor_items(u)} for u in range(graph.n)
    ]

    for u in ordering.order:
        higher = [(v, w) for v, w in adj[u].items() if rank[v] > rank[u]]
        for i, (v, w_uv) in enumerate(higher):
            adj_v = adj[v]
            for w, w_uw in higher[i + 1 :]:
                ops.add("contract_pair")
                candidate = w_uv + w_uw
                current = adj_v.get(w)
                if current is None or candidate < current:
                    adj_v[w] = candidate
                    adj[w][v] = candidate

    index = ShortcutGraph(ordering, adj, edge_weight_map(graph))
    if with_support:
        index.rebuild_supports(counter)
    return index
