"""CH distance and path queries (Section 2, "Query").

A query ``(s, t)`` runs a bidirectional variant of Dijkstra's algorithm
on ``sc(G)`` in which a shortcut is relaxed only when it leads to a
higher-ranked vertex.  Both searches therefore explore only the *upward
closure* of their source, which is tiny compared with the graph; the
answer is the best distance over vertices settled by both searches.

Path queries additionally unpack every shortcut on the meeting path into
the underlying road-network edges using the ``via`` witnesses maintained
by the index.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.ch.shortcut_graph import ShortcutGraph
from repro.utils.counters import OpCounter, resolve_counter

__all__ = ["ch_distance", "ch_path", "upward_search"]


def upward_search(
    index: ShortcutGraph,
    source: int,
    counter: Optional[OpCounter] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Full upward Dijkstra from *source* over ``sc(G)``.

    Returns ``(dist, parent)`` restricted to the upward closure of
    *source*.  Exposed separately because tests and the H2H tree
    decomposition proofs use the whole search space.
    """
    ops = resolve_counter(counter)
    rank = index.ordering.rank
    adj = index._adj  # hot loop: direct access by design
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {source: -1}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        rank_u = rank[u]
        for v, w in adj[u].items():
            if rank[v] <= rank_u:
                continue
            ops.add("upward_relax")
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def _bidirectional(
    index: ShortcutGraph, s: int, t: int, counter: Optional[OpCounter]
) -> Tuple[float, int, Dict[int, int], Dict[int, int]]:
    """Shared engine: returns (distance, meeting vertex, parents_f, parents_b)."""
    if not 0 <= s < index.n:
        raise QueryError(f"source {s} out of range [0, {index.n})")
    if not 0 <= t < index.n:
        raise QueryError(f"target {t} out of range [0, {index.n})")
    ops = resolve_counter(counter)
    if s == t:
        return 0.0, s, {s: -1}, {t: -1}
    rank = index.ordering.rank
    adj = index._adj
    dist_f: Dict[int, float] = {s: 0.0}
    dist_b: Dict[int, float] = {t: 0.0}
    parent_f: Dict[int, int] = {s: -1}
    parent_b: Dict[int, int] = {t: -1}
    heap_f: List[Tuple[float, int]] = [(0.0, s)]
    heap_b: List[Tuple[float, int]] = [(0.0, t)]
    best = math.inf
    meet = -1

    def expand(heap, dist_this, parent_this, dist_other) -> None:
        nonlocal best, meet
        d, u = heapq.heappop(heap)
        if d > dist_this.get(u, math.inf):
            return
        other = dist_other.get(u)
        if other is not None and d + other < best:
            best = d + other
            meet = u
        rank_u = rank[u]
        for v, w in adj[u].items():
            if rank[v] <= rank_u:
                continue
            ops.add("query_relax")
            nd = d + w
            if nd < dist_this.get(v, math.inf):
                dist_this[v] = nd
                parent_this[v] = u
                heapq.heappush(heap, (nd, v))

    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else math.inf
        top_b = heap_b[0][0] if heap_b else math.inf
        if min(top_f, top_b) >= best:
            break
        if top_f <= top_b:
            expand(heap_f, dist_f, parent_f, dist_b)
        else:
            expand(heap_b, dist_b, parent_b, dist_f)
    return best, meet, parent_f, parent_b


def ch_distance(
    index: ShortcutGraph,
    s: int,
    t: int,
    counter: Optional[OpCounter] = None,
) -> float:
    """The shortest distance ``sd(s, t)`` (``inf`` when disconnected)."""
    best, _, _, _ = _bidirectional(index, s, t, counter)
    return best


def _unpack(index: ShortcutGraph, u: int, v: int) -> List[int]:
    """Expand shortcut ``<u, v>`` into the underlying edge path (excl. *u*)."""
    result: List[int] = []
    stack: List[Tuple[int, int]] = [(u, v)]
    while stack:
        a, b = stack.pop()
        witness = index.via(a, b)
        if witness is None:
            result.append(b)
        else:
            # Expand right half first so the left half is processed next.
            stack.append((witness, b))
            stack.append((a, witness))
    return result


def ch_path(
    index: ShortcutGraph,
    s: int,
    t: int,
    counter: Optional[OpCounter] = None,
) -> Optional[List[int]]:
    """An actual shortest path from *s* to *t* in the road network.

    Returns the vertex list of a shortest path, or ``None`` when *t* is
    unreachable.  Shortcuts on the up-down meeting path are unpacked into
    original edges via the ``via`` witnesses.
    """
    best, meet, parent_f, parent_b = _bidirectional(index, s, t, counter)
    if math.isinf(best):
        return None
    if s == t:
        return [s]

    # Shortcut-level path: s -> ... -> meet -> ... -> t.
    forward: List[int] = [meet]
    while parent_f[forward[-1]] != -1:
        forward.append(parent_f[forward[-1]])
    forward.reverse()  # s ... meet
    backward: List[int] = [meet]
    while parent_b[backward[-1]] != -1:
        backward.append(parent_b[backward[-1]])
    # backward is meet ... t already in the right direction.

    hops = list(zip(forward[:-1], forward[1:])) + list(
        zip(backward[:-1], backward[1:])
    )
    path = [s]
    for a, b in hops:
        path.extend(_unpack(index, a, b))
    return path
