"""The shortcut graph ``sc(G)`` — the CH index (Section 2 of the paper).

Given a road network ``G`` and a total order ``pi`` over its vertices,
the shortcut graph contains a shortcut ``<u, v>`` for every pair of
vertices connected by a *valley path* (a path whose interior vertices all
rank below both endpoints); the shortcut's weight is the weight of the
shortest valley path.  Equivalently, the shortcut set is the elimination
fill of ``pi`` plus the original edges, and each weight satisfies
Equation (<>) of the paper::

    phi(e) = min( phi(e, G),
                  phi(e_1') + phi(e_1''), ..., phi(e_k') + phi(e_k'') )

where ``(e_i', e_i'')`` ranges over the *downward shortcut pairs* of
``e`` — pairs ``(<t, u>, <t, v>)`` with ``pi(t) < min(pi(u), pi(v))``.

Because the paper's CH variant is weight independent (Section 2), the
shortcut *set* is fixed at construction; weight updates only change
shortcut weights.  :class:`ShortcutGraph` therefore freezes the upward /
downward neighbor lists at build time and exposes mutation only through
weight setters, which is exactly the contract DCH/UE/IncH2H rely on.

Besides weights, the index stores per shortcut:

* ``sup(e)`` — the *support*: how many terms of Equation (<>) attain the
  minimum (used by the increase algorithms to detect when a weight must
  grow);
* ``via(e)`` — a witness: ``None`` when the original edge attains the
  minimum, else a common lower neighbor ``t`` attaining it (used for path
  unpacking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.graph.graph import RoadNetwork
from repro.order.ordering import Ordering
from repro.utils.counters import OpCounter, resolve_counter

__all__ = ["Shortcut", "ShortcutGraph"]

#: A shortcut identified by its canonical endpoint pair (smaller id first).
Shortcut = Tuple[int, int]


@dataclass(frozen=True)
class _RecomputeResult:
    """Outcome of evaluating Equation (<>) for one shortcut."""

    weight: float
    support: int
    via: Optional[int]


class ShortcutGraph:
    """The CH index: shortcut weights, supports and adjacency over ``pi``.

    Instances are produced by :func:`repro.ch.indexing.ch_indexing`; the
    constructor wires up pre-computed state and is not meant to be called
    directly by library users.
    """

    __slots__ = (
        "ordering",
        "_rank",
        "_adj",
        "_up",
        "_down",
        "_edge_w",
        "_sup",
        "_via",
        "_m_shortcuts",
    )

    def __init__(
        self,
        ordering: Ordering,
        adj: List[Dict[int, float]],
        edge_weights: Dict[Shortcut, float],
    ) -> None:
        self.ordering = ordering
        self._rank = ordering.rank
        self._adj = adj
        rank = self._rank
        self._up: List[List[int]] = [
            sorted((v for v in adj[u] if rank[v] > rank[u]), key=rank.__getitem__)
            for u in range(len(adj))
        ]
        self._down: List[List[int]] = [
            sorted((v for v in adj[u] if rank[v] < rank[u]), key=rank.__getitem__)
            for u in range(len(adj))
        ]
        self._edge_w = edge_weights
        self._sup: Dict[Shortcut, int] = {}
        self._via: Dict[Shortcut, Optional[int]] = {}
        self._m_shortcuts = sum(len(nbrs) for nbrs in adj) // 2

    def clone(self) -> "ShortcutGraph":
        """An independent copy sharing the weight-independent structure.

        The shortcut *set* (and hence the ``nbr+``/``nbr-`` lists and the
        ordering) is fixed at construction, so clones share it; only the
        mutable state — weights, supports, witnesses and the stored
        ``phi(e, G)`` map — is copied.  Mutating the clone (maintenance,
        rollback) never touches the original, which is what the
        epoch-snapshot serving layer relies on.
        """
        dup = ShortcutGraph.__new__(ShortcutGraph)
        dup.ordering = self.ordering
        dup._rank = self._rank
        dup._adj = [dict(nbrs) for nbrs in self._adj]
        dup._up = self._up
        dup._down = self._down
        dup._edge_w = dict(self._edge_w)
        dup._sup = dict(self._sup)
        dup._via = dict(self._via)
        dup._m_shortcuts = self._m_shortcuts
        return dup

    @property
    def backend(self) -> str:
        """Which representation backs this index: ``dict`` here,
        ``columnar`` for :class:`repro.columnar.ColumnarShortcutGraph`."""
        return "dict"

    def prepare_write(self) -> None:
        """Hook called by maintenance before its first direct mutation.

        The dict backend owns all its state outright, so this is a
        no-op; the columnar backend overrides it to take private
        ownership of every shared copy-on-write page.
        """

    def upward_weights(self, u: int) -> np.ndarray:
        """``phi(<u, v>)`` for ``v in nbr+(u)``, aligned with
        :meth:`upward`; the columnar backend serves this as one gather."""
        adj_u = self._adj[u]
        return np.fromiter(
            (adj_u[v] for v in self._up[u]),
            dtype=np.float64,
            count=len(self._up[u]),
        )

    # ------------------------------------------------------------------
    # Identity / canonical keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(u: int, v: int) -> Shortcut:
        """Canonical dictionary key of the shortcut between *u* and *v*."""
        return (u, v) if u < v else (v, u)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def num_shortcuts(self) -> int:
        """Number of shortcuts (the paper's "# of SCs", Table 2)."""
        return self._m_shortcuts

    def rank(self, v: int) -> int:
        """``pi(v)``."""
        return self._rank[v]

    def lower_endpoint(self, u: int, v: int) -> int:
        """The endpoint with the smaller rank (Q priority in DCH)."""
        return u if self._rank[u] < self._rank[v] else v

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def has_shortcut(self, u: int, v: int) -> bool:
        """True if shortcut ``<u, v>`` exists."""
        return v in self._adj[u]

    def shortcuts(self) -> Iterator[Shortcut]:
        """All shortcuts in canonical form."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def neighbors(self, u: int) -> Iterator[int]:
        """All shortcut neighbors of *u*."""
        return iter(self._adj[u])

    def upward(self, u: int) -> List[int]:
        """``nbr+(u)``: shortcut neighbors ranked above *u* (rank order)."""
        return self._up[u]

    def downward(self, u: int) -> List[int]:
        """``nbr-(u)``: shortcut neighbors ranked below *u* (rank order)."""
        return self._down[u]

    def degree(self, u: int) -> int:
        """Number of shortcuts incident to *u*."""
        return len(self._adj[u])

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def weight(self, u: int, v: int) -> float:
        """``phi(<u, v>)``: the weight of the shortcut.

        Raises
        ------
        IndexError_
            If the shortcut does not exist.
        """
        try:
            return self._adj[u][v]
        except (KeyError, IndexError):
            raise IndexError_(f"no shortcut between {u} and {v}") from None

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite ``phi(<u, v>)`` (maintenance algorithms only)."""
        if v not in self._adj[u]:
            raise IndexError_(f"no shortcut between {u} and {v}")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def edge_weight(self, u: int, v: int) -> float:
        """``phi(e, G)``: the weight of edge ``(u, v)`` in ``G``, or ``inf``.

        The index keeps its own copy of the graph's weights because the
        maintenance algorithms (Algorithms 2-5) read and write
        ``phi(e, G)`` as part of their state.
        """
        return self._edge_w.get(self.key(u, v), math.inf)

    def set_edge_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the stored ``phi(e, G)`` of edge ``(u, v)``."""
        key = self.key(u, v)
        if key not in self._edge_w:
            raise IndexError_(f"({u}, {v}) is not an edge of G")
        self._edge_w[key] = weight

    def is_graph_edge(self, u: int, v: int) -> bool:
        """True if ``(u, v)`` is an original edge of ``G``."""
        return self.key(u, v) in self._edge_w

    def edge_weights(self) -> Dict[Shortcut, float]:
        """A copy of the stored ``phi(e, G)`` map, keyed canonically.

        This is the public read face of the index's private edge-weight
        store; persistence and recovery rebuild the road network from it.
        """
        return dict(self._edge_w)

    def num_graph_edges(self) -> int:
        """Number of original graph edges tracked by the index."""
        return len(self._edge_w)

    def shortcut_records(
        self,
    ) -> Iterator[Tuple[int, int, float, int, Optional[int]]]:
        """All shortcuts as ``(u, v, weight, sup, via)`` records.

        Canonical order (``u < v``); the public iteration face used by
        :mod:`repro.persist` and the integrity verifier so neither has to
        reach into the private ``_sup`` / ``_via`` dictionaries.
        """
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    key = (u, v)
                    yield u, v, w, self._sup[key], self._via[key]

    # ------------------------------------------------------------------
    # Support / witness
    # ------------------------------------------------------------------
    def support(self, u: int, v: int) -> int:
        """``sup(<u, v>)``: number of Equation (<>) terms attaining the min."""
        return self._sup[self.key(u, v)]

    def set_support(self, u: int, v: int, value: int) -> None:
        """Overwrite ``sup(<u, v>)``."""
        self._sup[self.key(u, v)] = value

    def via(self, u: int, v: int) -> Optional[int]:
        """A witness for ``phi(<u, v>)``: ``None`` for the original edge,
        else a common lower neighbor whose downward pair attains the min."""
        return self._via[self.key(u, v)]

    def set_via(self, u: int, v: int, witness: Optional[int]) -> None:
        """Overwrite the path-unpacking witness of ``<u, v>``."""
        self._via[self.key(u, v)] = witness

    # ------------------------------------------------------------------
    # Shortcut-pair enumeration (Section 2)
    # ------------------------------------------------------------------
    def scp_minus(self, u: int, v: int) -> Iterator[int]:
        """Downward shortcut pairs of ``<u, v>`` as their shared vertex *t*.

        Yields each ``t`` with ``pi(t) < min(pi(u), pi(v))`` adjacent to
        both endpoints; the pair itself is ``(<t, u>, <t, v>)``.
        """
        rank = self._rank
        limit = min(rank[u], rank[v])
        down_u, down_v = self._down[u], self._down[v]
        if len(down_u) <= len(down_v):
            smaller, other = down_u, self._adj[v]
        else:
            smaller, other = down_v, self._adj[u]
        for t in smaller:
            if rank[t] < limit and t in other:
                yield t

    def scp_plus(self, u: int, v: int) -> Iterator[Tuple[int, int, int]]:
        """Upward shortcut pairs of ``<u, v>``.

        Let ``x`` be the lower-ranked endpoint and ``y`` the higher one.
        Yields triples ``(x, w, y)`` meaning the pair
        ``(<x, w>, <w, y>)`` — i.e. ``<x, y>`` together with ``<x, w>``
        forms a downward pair of ``<w, y>``, so a change of ``<x, y>``
        can affect ``<w, y>``.
        """
        rank = self._rank
        x, y = (u, v) if rank[u] < rank[v] else (v, u)
        adj_y = self._adj[y]
        for w in self._up[x]:
            if w != y and w in adj_y:
                yield (x, w, y)

    # ------------------------------------------------------------------
    # Equation (<>)
    # ------------------------------------------------------------------
    def evaluate_equation(
        self, u: int, v: int, counter: Optional[OpCounter] = None
    ) -> _RecomputeResult:
        """Evaluate Equation (<>) for ``<u, v>`` from current weights.

        Returns the minimum value, how many terms attain it, and a witness.
        Does **not** mutate the index; see :meth:`recompute`.
        """
        ops = resolve_counter(counter)
        adj_u, adj_v = self._adj[u], self._adj[v]
        edge_w = self._edge_w.get(self.key(u, v), math.inf)
        best = edge_w
        support = 0 if math.isinf(best) else 1
        witness: Optional[int] = None
        # Inlined scp_minus: iterate the smaller downward list, membership
        # via the other endpoint's adjacency dict (hot path).
        rank = self._rank
        limit = min(rank[u], rank[v])
        down_u, down_v = self._down[u], self._down[v]
        if len(down_u) <= len(down_v):
            smaller, other = down_u, adj_v
        else:
            smaller, other = down_v, adj_u
        inspected = 0
        for t in smaller:
            if rank[t] < limit and t in other:
                inspected += 1
                candidate = adj_u[t] + adj_v[t]
                if candidate < best:
                    best = candidate
                    support = 1
                    witness = t
                elif candidate == best and not math.isinf(candidate):
                    support += 1
        ops.add("scp_minus_inspect", inspected)
        if best == edge_w:
            # Prefer the original edge as the unpacking witness.
            witness = None
        return _RecomputeResult(weight=best, support=support, via=witness)

    def recompute(
        self, u: int, v: int, counter: Optional[OpCounter] = None
    ) -> float:
        """Recompute and store weight, support and witness of ``<u, v>``.

        Returns the new weight.  This is line 13 of Algorithm 2 (DCH+).
        """
        result = self.evaluate_equation(u, v, counter)
        self.set_weight(u, v, result.weight)
        key = self.key(u, v)
        self._sup[key] = result.support
        self._via[key] = result.via
        return result.weight

    def rebuild_supports(self, counter: Optional[OpCounter] = None) -> None:
        """Recompute ``sup``/``via`` of every shortcut from Equation (<>).

        Called once at indexing time; weights must already satisfy
        Equation (<>) (they do after :func:`repro.ch.indexing.ch_indexing`).
        """
        for u, v in self.shortcuts():
            result = self.evaluate_equation(u, v, counter)
            if result.weight != self._adj[u][v]:
                raise IndexError_(
                    f"shortcut <{u}, {v}> weight {self._adj[u][v]} violates "
                    f"Equation (<>) value {result.weight}"
                )
            key = (u, v)
            self._sup[key] = result.support
            self._via[key] = result.via

    # ------------------------------------------------------------------
    # Whole-index views (tests, experiments)
    # ------------------------------------------------------------------
    def weight_snapshot(self) -> Dict[Shortcut, float]:
        """A copy of all shortcut weights, keyed canonically."""
        return {
            (u, v): w
            for u, nbrs in enumerate(self._adj)
            for v, w in nbrs.items()
            if u < v
        }

    def support_snapshot(self) -> Dict[Shortcut, int]:
        """A copy of all support counters."""
        return dict(self._sup)

    def via_snapshot(self) -> Dict[Shortcut, Optional[int]]:
        """A copy of all path-unpacking witnesses."""
        return dict(self._via)

    def size_in_bytes(self, incremental: bool = True) -> int:
        """Approximate index size for Fig. 3b.

        Counts 8 bytes per stored scalar: weight + two adjacency entries
        per shortcut, plus ``phi(e, G)`` per edge, plus (when
        *incremental*) ``sup`` and ``via`` per shortcut.
        """
        per_shortcut = 3 + (2 if incremental else 0)
        return 8 * (per_shortcut * self._m_shortcuts + len(self._edge_w))

    def validate(self) -> None:
        """Check internal consistency; raise :class:`IndexError_` on failure.

        Verifies symmetry of the adjacency, Equation (<>) for every
        shortcut, and correctness of every support counter and witness.
        """
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if self._adj[v].get(u) != w:
                    raise IndexError_(f"asymmetric weight on <{u}, {v}>")
        for u, v in self.shortcuts():
            result = self.evaluate_equation(u, v)
            key = (u, v)
            if result.weight != self._adj[u][v]:
                raise IndexError_(
                    f"<{u}, {v}>: stored weight {self._adj[u][v]}, "
                    f"Equation (<>) gives {result.weight}"
                )
            if self._sup.get(key) != result.support:
                raise IndexError_(
                    f"<{u}, {v}>: stored support {self._sup.get(key)}, "
                    f"actual {result.support}"
                )

    def __repr__(self) -> str:
        return f"ShortcutGraph(n={self.n}, shortcuts={self._m_shortcuts})"


def edge_weight_map(graph: RoadNetwork) -> Dict[Shortcut, float]:
    """Canonical ``(u, v) -> phi(e, G)`` map of *graph*'s edges."""
    return {(u, v): w for u, v, w in graph.edges()}
