"""Edge insertion and deletion for CH (Section 7 of the paper).

Edge updates are rare in road networks (construction/destruction), so
the paper handles them asymmetrically:

* **deletion** simply raises the edge weight to infinity and reuses the
  weight-increase machinery (DCH+); the shortcut *structure* is kept,
  only weights change;
* **insertion** may genuinely change the structure: a new edge is a new
  valley path, and its presence can induce new valley paths between
  higher-ranked vertices.  Keeping the contraction order fixed, the new
  shortcut set is the fill closure of the old one plus the new edge:
  whenever a vertex ``a`` has two higher-ranked shortcut neighbors
  ``b, c``, the shortcut ``<b, c>`` must exist.  The closure is computed
  with a worklist in ascending rank of the lower endpoint (each new
  shortcut can only create shortcuts with higher lower endpoints, so one
  monotone pass suffices), after which weights are restored by Equation
  (<>) recomputations plus a DCH- style downstream relaxation.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import List, Optional, Tuple

from repro.errors import UpdateError
from repro.ch.dch import ChangedShortcut, dch_increase
from repro.ch.shortcut_graph import Shortcut, ShortcutGraph
from repro.utils.counters import OpCounter, resolve_counter
from repro.utils.heap import AddressableHeap

__all__ = ["insert_edge", "delete_edge"]


def delete_edge(
    index: ShortcutGraph,
    u: int,
    v: int,
    counter: Optional[OpCounter] = None,
) -> List[ChangedShortcut]:
    """Delete edge ``(u, v)``: weight becomes infinite (Section 7).

    The edge stays registered in the index with weight ``inf`` so that a
    later re-insertion is a plain weight decrease.  Returns the changed
    shortcuts, exactly like :func:`repro.ch.dch.dch_increase`.
    """
    if not index.is_graph_edge(u, v):
        raise UpdateError(f"({u}, {v}) is not an edge of G")
    return dch_increase(index, [((u, v), math.inf)], counter)


def _register_shortcut(index: ShortcutGraph, a: int, b: int) -> None:
    """Add shortcut ``<a, b>`` to the frozen structure with weight inf."""
    rank = index.ordering.rank
    index._adj[a][b] = math.inf
    index._adj[b][a] = math.inf
    low, high = (a, b) if rank[a] < rank[b] else (b, a)
    insort(index._up[low], high, key=rank.__getitem__)
    insort(index._down[high], low, key=rank.__getitem__)
    index._sup[index.key(a, b)] = 0
    index._via[index.key(a, b)] = None
    index._m_shortcuts += 1


def insert_edge(
    index: ShortcutGraph,
    u: int,
    v: int,
    weight: float,
    counter: Optional[OpCounter] = None,
) -> Tuple[List[Shortcut], List[ChangedShortcut]]:
    """Insert edge ``(u, v)`` with *weight* into the CH index (Section 7).

    The contraction order is kept fixed (re-ordering would rebuild the
    whole index; the paper's approach, following [39], accepts a mildly
    sub-optimal order instead).

    Returns
    -------
    (new_shortcuts, changed):
        *new_shortcuts* lists the shortcuts created by the structural
        closure (including ``<u, v>`` itself when it did not exist);
        *changed* lists pre-existing shortcuts whose weight changed.

    Raises
    ------
    UpdateError
        If the edge already exists (use a weight update instead), the
        weight is invalid, or the index uses the columnar backend
        (whose slot layout is frozen at conversion; convert back with
        ``to_shortcut_graph()``, insert, then re-convert).
    """
    if getattr(index, "backend", "dict") == "columnar":
        raise UpdateError(
            "insert_edge needs to grow the shortcut structure, which the "
            "columnar backend freezes; materialize a dict-backed index "
            "with to_shortcut_graph(), insert there, then convert back"
        )
    if index.is_graph_edge(u, v):
        raise UpdateError(f"({u}, {v}) already exists; use a weight update")
    if u == v:
        raise UpdateError("self-loops are not allowed")
    if weight < 0 or math.isnan(weight):
        raise UpdateError(f"invalid weight {weight}")
    ops = resolve_counter(counter)
    rank = index.ordering.rank

    index._edge_w[index.key(u, v)] = weight

    # ------------------------------------------------------------------
    # Phase 1: structural closure (new shortcuts), monotone worklist.
    # ------------------------------------------------------------------
    new_shortcuts: List[Shortcut] = []
    worklist: AddressableHeap[Shortcut] = AddressableHeap()

    def priority(key: Shortcut) -> Tuple[int, int]:
        a, b = key
        return (min(rank[a], rank[b]), max(rank[a], rank[b]))

    if not index.has_shortcut(u, v):
        key = index.key(u, v)
        _register_shortcut(index, u, v)
        new_shortcuts.append(key)
        worklist.push(key, priority(key))

    while worklist:
        (a, b), _ = worklist.pop()
        ops.add("closure_pop")
        low = index.lower_endpoint(a, b)
        high = b if low == a else a
        for c in list(index.upward(low)):
            if c == high or index.has_shortcut(high, c):
                continue
            ops.add("closure_new")
            key = index.key(high, c)
            _register_shortcut(index, high, c)
            new_shortcuts.append(key)
            worklist.push(key, priority(key))

    # ------------------------------------------------------------------
    # Phase 2: weights.  New shortcuts are evaluated bottom-up, then a
    # decrease-style relaxation pushes improvements into existing ones.
    # ------------------------------------------------------------------
    new_shortcuts.sort(key=priority)
    for a, b in new_shortcuts:
        index.recompute(a, b, ops)

    queue: AddressableHeap[Shortcut] = AddressableHeap()
    original: dict = {}
    touched = set(new_shortcuts)
    seeds = list(new_shortcuts)
    existing_uv = index.key(u, v)
    if existing_uv not in touched:
        # <u, v> already existed as a shortcut: the new edge may lower it.
        touched.add(existing_uv)
        if weight < index.weight(u, v):
            original[existing_uv] = index.weight(u, v)
            index.set_weight(u, v, weight)
        seeds.append(existing_uv)
    for key in seeds:
        queue.push(key, priority(key))

    while queue:
        key, _ = queue.pop()
        ops.add("queue_pop")
        a, b = key
        weight_e = index.weight(a, b)
        if math.isinf(weight_e):
            continue
        for x, w_mid, y in index.scp_plus(a, b):
            ops.add("scp_plus_inspect")
            partner = index.key(w_mid, y)
            touched.add(partner)
            candidate = weight_e + index.weight(x, w_mid)
            if candidate < index.weight(*partner):
                original.setdefault(partner, index.weight(*partner))
                index.set_weight(*partner, candidate)
                if partner not in queue:
                    queue.push(partner, priority(partner))

    # Restore exact supports/witnesses on everything we looked at.
    fixup = OpCounter()
    for a, b in touched:
        result = index.evaluate_equation(a, b, fixup)
        index.set_support(a, b, result.support)
        index.set_via(a, b, result.via)
    ops.add("support_fixup", fixup.total())

    changed = [
        (key, old, index.weight(*key))
        for key, old in original.items()
        if index.weight(*key) != old
    ]
    return new_shortcuts, changed
