"""Contraction hierarchy (CH): index, queries, incremental maintenance."""

from repro.ch.dch import dch_decrease, dch_increase
from repro.ch.edge_updates import delete_edge, insert_edge
from repro.ch.indexing import ch_indexing
from repro.ch.query import ch_distance, ch_path
from repro.ch.shortcut_graph import Shortcut, ShortcutGraph
from repro.ch.ue import ue_update

__all__ = [
    "Shortcut",
    "ShortcutGraph",
    "ch_distance",
    "ch_indexing",
    "ch_path",
    "dch_decrease",
    "dch_increase",
    "delete_edge",
    "insert_edge",
    "ue_update",
]
