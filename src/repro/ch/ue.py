"""UE — the unoptimized CH maintenance baseline [48] (Section 4.3).

UE propagates changes through the same upward-pair structure as DCH but,
for each upward shortcut pair ``(e', e'')`` of a changed shortcut ``e``,
it *recomputes the weight of* ``e''`` *from scratch* via Equation (<>)
whether or not ``e''`` actually needs updating.  DCH instead first tests
in O(1) (via the support counter) whether ``e''`` can be affected.  As
Section 4.3 notes, this makes UE neither bounded nor subbounded relative
to CHIndexing; Figures 2j-2k quantify the gap, and this module exists to
reproduce them.

Unlike DCH's split into an increase and a decrease algorithm, UE handles
an arbitrary mix of increases and decreases in one pass, which is
faithful to [48]'s presentation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import UpdateError
from repro.ch.dch import ChangedShortcut
from repro.ch.shortcut_graph import Shortcut, ShortcutGraph
from repro.graph.graph import WeightUpdate
from repro.utils.counters import OpCounter, resolve_counter
from repro.utils.heap import AddressableHeap

__all__ = ["ue_update"]


def ue_update(
    index: ShortcutGraph,
    updates: Sequence[WeightUpdate],
    counter: Optional[OpCounter] = None,
) -> List[ChangedShortcut]:
    """Apply a batch of weight updates (any mix of directions) with UE.

    Parameters
    ----------
    index:
        The CH index, mutated in place.
    updates:
        ``((u, v), new_weight)`` pairs; each edge at most once.
    counter:
        Optional instrumentation; the recompute-heavy behaviour shows up
        in the ``scp_minus_inspect`` channel.

    Returns
    -------
    list of (shortcut, old_weight, new_weight)
        Shortcuts whose weight differs from before the batch.
    """
    ops = resolve_counter(counter)
    rank = index.ordering.rank
    seen: Set[Shortcut] = set()
    queue: AddressableHeap[Shortcut] = AddressableHeap()
    original: dict = {}

    def priority(key: Shortcut) -> Tuple[int, int]:
        u, v = key
        return (min(rank[u], rank[v]), max(rank[u], rank[v]))

    for (u, v), w in updates:
        key = index.key(u, v)
        if not index.is_graph_edge(u, v):
            raise UpdateError(f"({u}, {v}) is not an edge of G")
        if key in seen:
            raise UpdateError(f"edge ({u}, {v}) appears twice in one batch")
        if w < 0 or math.isnan(w):
            raise UpdateError(f"invalid weight {w} for edge ({u}, {v})")
        seen.add(key)
        index.set_edge_weight(u, v, w)
        old = index.weight(u, v)
        ops.add("ue_recompute")
        if index.recompute(u, v, ops) != old:
            original.setdefault(key, old)
            queue.push(key, priority(key))

    while queue:
        key, _ = queue.pop()
        ops.add("queue_pop")
        u, v = key
        # UE's defining trait: recompute every upward-pair partner from
        # scratch, without first testing whether it can have changed.
        for _, w_mid, y in index.scp_plus(u, v):
            ops.add("scp_plus_inspect")
            partner = index.key(w_mid, y)
            old = index.weight(*partner)
            ops.add("ue_recompute")
            if index.recompute(*partner, ops) != old:
                original.setdefault(partner, old)
                queue.push(partner, priority(partner))

    return [
        (key, old, index.weight(*key))
        for key, old in original.items()
        if index.weight(*key) != old
    ]
