"""DCH — the state-of-the-art incremental CH maintenance [39].

``dch_increase`` is Algorithm 2 (DCH+) and ``dch_decrease`` is
Algorithm 3 (DCH-) of the paper.  Section 4.2 proves:

* DCH+ is *subbounded relative to* CHIndexing: it runs in
  ``O(||AFF|| log ||AFF||)`` time, where ``||AFF||`` is the time
  CHIndexing spends on the affected shortcuts;
* DCH- is additionally *bounded relative to* CHIndexing: it runs in
  ``O(|DIFF| log |DIFF|)`` time.

Both functions return the set of shortcuts whose weight changed (the
paper's set ``C``), which IncH2H consumes directly (Algorithms 4-5).

Support maintenance under decreases
-----------------------------------
Algorithm 3 does not spell out how ``sup`` is kept exact; the paper notes
it "can be done on-the-fly".  Doing it literally on the fly is delicate
because the same shortcut pair can be re-evaluated from both of its
members, so this implementation instead recomputes ``sup``/``via`` from
Equation (<>) for every shortcut *touched* by the decrease pass (weight
changed, or inspected as an upward-pair partner).  The extra work is
tallied in the separate ``"support_fixup"`` counter channel so the
relative-boundedness measurements of the core algorithm stay faithful to
Algorithm 3 as printed.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import UpdateError
from repro.ch.shortcut_graph import Shortcut, ShortcutGraph
from repro.graph.graph import WeightUpdate
from repro.obs import names
from repro.obs.trace import span
from repro.perf import kernels
from repro.utils.counters import OpCounter, resolve_counter
from repro.utils.heap import AddressableHeap

__all__ = ["dch_increase", "dch_decrease", "ChangedShortcut"]

#: A changed shortcut with its weight before and after the update.
ChangedShortcut = Tuple[Shortcut, float, float]


def _validate_batch(
    index: ShortcutGraph, updates: Sequence[WeightUpdate], direction: str
) -> None:
    """Check the batch is well-formed and monotone in *direction*."""
    seen: Set[Shortcut] = set()
    for (u, v), w in updates:
        key = index.key(u, v)
        if not index.is_graph_edge(u, v):
            raise UpdateError(f"({u}, {v}) is not an edge of G")
        if key in seen:
            raise UpdateError(f"edge ({u}, {v}) appears twice in one batch")
        seen.add(key)
        if w < 0 or math.isnan(w):
            raise UpdateError(f"invalid weight {w} for edge ({u}, {v})")
        old = index.edge_weight(u, v)
        if direction == "increase" and w < old:
            raise UpdateError(
                f"dch_increase got a decrease on ({u}, {v}): {old} -> {w}"
            )
        if direction == "decrease" and w > old:
            raise UpdateError(
                f"dch_decrease got an increase on ({u}, {v}): {old} -> {w}"
            )


def _trace_boundedness(sp, index, delta, changed, ops, ops_before) -> None:
    """Attach the boundedness currencies and per-call op counts to *sp*.

    Only runs when a sink is attached (``sp.active``); the currencies
    require scanning ``scp±`` lists, which must not burden untraced
    runs.  Reads only — the differential test asserts tracing leaves
    the index bit-identical.
    """
    from repro.core.changed import ch_change_metrics  # circular at module level

    metrics = ch_change_metrics(index, delta, changed)
    current = ops.as_dict()
    call_ops = {
        channel: count - ops_before.get(channel, 0)
        for channel, count in current.items()
        if count - ops_before.get(channel, 0)
    }
    sp.set(
        delta=delta,
        changed=len(changed),
        aff_norm=metrics.aff_norm,
        diff=metrics.diff,
        ops=call_ops,
        ops_total=sum(call_ops.values()),
    )


def dch_increase(
    index: ShortcutGraph,
    updates: Sequence[WeightUpdate],
    counter: Optional[OpCounter] = None,
) -> List[ChangedShortcut]:
    """DCH+ (Algorithm 2): apply weight *increases* to the CH index.

    Parameters
    ----------
    index:
        The CH index; mutated in place (weights, supports, witnesses and
        its stored ``phi(e, G)`` copies).
    updates:
        ``((u, v), new_weight)`` pairs; every new weight must be >= the
        current ``phi(e, G)``.
    counter:
        Optional instrumentation; channels: ``queue_push``, ``queue_pop``,
        ``scp_plus_inspect``, ``scp_minus_inspect``, ``delta_inspect``.

    Returns
    -------
    list of (shortcut, old_weight, new_weight)
        The paper's set ``C``: shortcuts whose weight changed, in the
        order they were finalized (ascending rank of lower endpoint).
    """
    _validate_batch(index, updates, "increase")
    index.prepare_write()
    with span(names.SPAN_DCH_INCREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops = resolve_counter(counter)
        ops_before = ops.as_dict() if sp.active else None
        rank = index.ordering.rank
        queue: AddressableHeap[Shortcut] = AddressableHeap()

        def priority(key: Shortcut) -> Tuple[int, int]:
            u, v = key
            return (min(rank[u], rank[v]), max(rank[u], rank[v]))

        # Lines 2-6: consume Delta G.
        with span(names.SPAN_DCH_INCREASE_SEED, delta=len(updates)):
            for (u, v), w in updates:
                ops.add("delta_inspect")
                key = index.key(u, v)
                old_edge_weight = index.edge_weight(u, v)
                if w > old_edge_weight and not math.isinf(old_edge_weight) and (
                    old_edge_weight == index.weight(u, v)
                ):
                    sup = index.support(u, v) - 1
                    index.set_support(u, v, sup)
                    if sup == 0:
                        queue.push(key, priority(key))
                        ops.add("queue_push")
                index.set_edge_weight(u, v, w)

        changed: List[ChangedShortcut] = []
        # Lines 7-13: propagate, lowest lower-endpoint rank first.
        with span(names.SPAN_DCH_INCREASE_PROPAGATE) as sp_prop:
            while queue:
                key, _ = queue.pop()
                ops.add("queue_pop")
                u, v = key
                old_weight = index.weight(u, v)
                # Lines 9-12: the weight of <u, v> is about to increase; any
                # upward-pair partner it currently supports loses one support.
                # Infinite weights (deleted roads) support nothing by convention,
                # matching evaluate_equation's support counting.
                triples = (
                    list(index.scp_plus(u, v))
                    if not math.isinf(old_weight)
                    else []
                )
                ops.add("scp_plus_inspect", len(triples))
                if len(triples) >= kernels.DCH_KERNEL_MIN_TRIPLES:
                    # Batched: within one pop, x and y are fixed and only
                    # the mid w varies, so the partner weights gathered up
                    # front cannot be perturbed by the support writes below
                    # (partners are pairwise distinct, legs never written).
                    cands, currents = kernels.relax_arrays(
                        index._adj, triples, old_weight
                    )
                    hits = np.nonzero(~np.isinf(cands) & (currents == cands))[0]
                    for i in hits:
                        _x, w_mid, y = triples[i]
                        partner = index.key(w_mid, y)
                        sup = index.support(*partner) - 1
                        index.set_support(*partner, sup)
                        if sup == 0:
                            queue.push(partner, priority(partner))
                            ops.add("queue_push")
                else:
                    for x, w_mid, y in triples:
                        partner = index.key(w_mid, y)
                        candidate = old_weight + index.weight(x, w_mid)
                        if not math.isinf(candidate) and index.weight(*partner) == candidate:
                            sup = index.support(*partner) - 1
                            index.set_support(*partner, sup)
                            if sup == 0:
                                queue.push(partner, priority(partner))
                                ops.add("queue_push")
                # Line 13: recompute weight and support from Equation (<>).
                new_weight = index.recompute(u, v, counter)
                if new_weight != old_weight:
                    changed.append((key, old_weight, new_weight))
            sp_prop.set(changed=len(changed))
        if sp.active:
            _trace_boundedness(sp, index, len(updates), changed, ops, ops_before)
    return changed


def dch_decrease(
    index: ShortcutGraph,
    updates: Sequence[WeightUpdate],
    counter: Optional[OpCounter] = None,
) -> List[ChangedShortcut]:
    """DCH- (Algorithm 3): apply weight *decreases* to the CH index.

    Mirrors :func:`dch_increase`; see the module docstring for how
    supports are restored after the relaxation pass.

    Returns
    -------
    list of (shortcut, old_weight, new_weight)
        Shortcuts whose weight changed, with their original (pre-batch)
        and final weights.
    """
    _validate_batch(index, updates, "decrease")
    index.prepare_write()
    with span(names.SPAN_DCH_DECREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops = resolve_counter(counter)
        ops_before = ops.as_dict() if sp.active else None
        rank = index.ordering.rank
        queue: AddressableHeap[Shortcut] = AddressableHeap()

        def priority(key: Shortcut) -> Tuple[int, int]:
            u, v = key
            return (min(rank[u], rank[v]), max(rank[u], rank[v]))

        original: dict = {}

        # Lines 2-6: consume Delta G.  A strictly smaller edge weight either
        # relaxes the shortcut (support resets to the edge term alone) or ties
        # it (the edge term newly attains the minimum: one more support).
        with span(names.SPAN_DCH_DECREASE_SEED, delta=len(updates)):
            for (u, v), w in updates:
                ops.add("delta_inspect")
                key = index.key(u, v)
                old_edge_w = index.edge_weight(u, v)
                index.set_edge_weight(u, v, w)
                current = index.weight(u, v)
                if w < current:
                    original.setdefault(key, current)
                    index.set_weight(u, v, w)
                    index.set_support(u, v, 1)
                    index.set_via(u, v, None)
                    if key not in queue:
                        queue.push(key, priority(key))
                        ops.add("queue_push")
                elif w == current and w < old_edge_w and not math.isinf(w):
                    index.set_support(u, v, index.support(u, v) + 1)

        # Lines 7-12: propagate relaxations.  Supports are maintained exactly
        # on the fly: all weights sharing a lower endpoint are final before
        # the first of them pops, so a pair's sum is evaluated with final
        # values; when *both* members of a pair changed, the pair would be
        # evaluated from both pops with the same sum, so the earlier pop
        # (other member still queued) skips it and the later pop applies it.
        with span(names.SPAN_DCH_DECREASE_PROPAGATE):
            while queue:
                key, _ = queue.pop()
                ops.add("queue_pop")
                u, v = key
                weight_e = index.weight(u, v)
                triples = list(index.scp_plus(u, v))
                ops.add("scp_plus_inspect", len(triples))
                if len(triples) >= kernels.DCH_KERNEL_MIN_TRIPLES:
                    # Batched: x and y are fixed within one pop, so legs
                    # (x, w) and partners (w, y) never coincide — the leg
                    # gathers, partner gathers and queue-membership skip
                    # mask computed up front all stay exact while the
                    # relaxations below write partner weights.
                    adj = index._adj
                    cands, currents = kernels.relax_arrays(adj, triples, weight_e)
                    live = np.fromiter(
                        (index.key(x, w_mid) not in queue for x, w_mid, _y in triples),
                        dtype=bool,
                        count=len(triples),
                    )
                    finite = ~np.isinf(cands)
                    acted = np.nonzero(
                        live & ((cands < currents) | ((cands == currents) & finite))
                    )[0]
                    for i in acted:
                        x, w_mid, y = triples[i]
                        partner = index.key(w_mid, y)
                        candidate = float(cands[i])
                        current = adj[w_mid][y]
                        if candidate < current:
                            original.setdefault(partner, current)
                            index.set_weight(*partner, candidate)
                            index.set_support(*partner, 1)
                            index.set_via(*partner, x)
                            if partner not in queue:
                                queue.push(partner, priority(partner))
                                ops.add("queue_push")
                        else:
                            index.set_support(*partner, index.support(*partner) + 1)
                else:
                    for x, w_mid, y in triples:
                        if (index.key(x, w_mid)) in queue:
                            continue  # the other member's pop will evaluate this pair
                        partner = index.key(w_mid, y)
                        candidate = weight_e + index._adj[x][w_mid]
                        current = index._adj[w_mid][y]
                        if candidate < current:
                            original.setdefault(partner, current)
                            index.set_weight(*partner, candidate)
                            index.set_support(*partner, 1)
                            index.set_via(*partner, x)
                            if partner not in queue:
                                queue.push(partner, priority(partner))
                                ops.add("queue_push")
                        elif candidate == current and not math.isinf(candidate):
                            index.set_support(*partner, index.support(*partner) + 1)

        changed = [
            (key, old, index.weight(*key))
            for key, old in original.items()
            if index.weight(*key) != old
        ]
        if sp.active:
            _trace_boundedness(sp, index, len(updates), changed, ops, ops_before)
    return changed
