"""Synthetic diurnal traffic model (substitute for the England trace).

Figure 2f of the paper analyzes a proprietary month of historical transit
times for 600 English highways: for each road, the 10th percentile of its
historical transit times is taken as a reference weight ``omega(e)``; the
road is *congested* when its current transit time exceeds ``c * omega(e)``
and *normal* otherwise; an *update* is a transition between the two
states; the figure reports the average number of updates per minute per
road over the course of a day.

We cannot ship that trace, so :class:`TrafficModel` synthesizes an
equivalent one: each road gets a free-flow transit time, a diurnal
congestion profile with morning and evening rush-hour peaks, lognormal
measurement noise, and random incident episodes.  The same
10th-percentile + threshold-c analysis is then run on the synthetic
series.  The property Fig. 2f demonstrates — update rates are tiny except
around rush-hour transitions — is a consequence of the two-peak diurnal
shape, which the model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import GraphError

__all__ = ["TrafficModel", "TrafficObservation"]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class TrafficObservation:
    """One point of the Fig. 2f series."""

    minute_of_day: int
    updates_per_minute_per_road: float


class TrafficModel:
    """Per-minute transit-time series for a fleet of roads.

    Parameters
    ----------
    n_roads:
        Number of monitored roads (the paper's trace has 600 highways).
    days:
        Number of simulated days (the paper's trace covers one month).
    seed:
        Seed for the underlying generator.
    free_flow_range:
        Range of free-flow transit times in seconds.

    Example
    -------
    >>> model = TrafficModel(n_roads=10, days=2, seed=1)
    >>> series = model.series(0)
    >>> len(series) == 2 * 1440
    True
    """

    def __init__(
        self,
        n_roads: int = 600,
        days: int = 7,
        seed: int = 0,
        free_flow_range: Sequence[float] = (60.0, 600.0),
    ) -> None:
        if n_roads < 1:
            raise GraphError(f"n_roads must be >= 1, got {n_roads}")
        if days < 1:
            raise GraphError(f"days must be >= 1, got {days}")
        self.n_roads = n_roads
        self.days = days
        rng = np.random.default_rng(seed)
        lo, hi = free_flow_range
        self._free_flow = rng.uniform(lo, hi, size=n_roads)
        # Per-road rush-hour severity: how much slower than free flow the
        # road gets at the peak (1.0 = doubles the transit time).
        self._am_severity = rng.uniform(0.3, 2.5, size=n_roads)
        self._pm_severity = rng.uniform(0.3, 2.5, size=n_roads)
        # Peak positions jitter road-to-road by up to ~40 minutes.
        self._am_peak = 8 * 60 + rng.normal(0.0, 40.0, size=n_roads)
        self._pm_peak = 17.5 * 60 + rng.normal(0.0, 40.0, size=n_roads)
        self._noise_sigma = rng.uniform(0.02, 0.08, size=n_roads)
        self._incident_rate = rng.uniform(0.0, 2.0, size=n_roads)  # per day
        self._rng = rng
        self._series_cache: dict = {}

    # ------------------------------------------------------------------
    def _diurnal_multiplier(self, road: int) -> np.ndarray:
        """Deterministic day profile: 1.0 off-peak, Gaussian rush bumps."""
        minutes = np.arange(MINUTES_PER_DAY, dtype=np.float64)
        am = self._am_severity[road] * np.exp(
            -0.5 * ((minutes - self._am_peak[road]) / 45.0) ** 2
        )
        pm = self._pm_severity[road] * np.exp(
            -0.5 * ((minutes - self._pm_peak[road]) / 55.0) ** 2
        )
        return 1.0 + am + pm

    def series(self, road: int) -> np.ndarray:
        """Transit-time series of *road*: one value per simulated minute."""
        if not 0 <= road < self.n_roads:
            raise GraphError(f"road {road} out of range [0, {self.n_roads})")
        cached = self._series_cache.get(road)
        if cached is not None:
            return cached
        rng = np.random.default_rng((road + 1) * 7919)
        day_profile = self._diurnal_multiplier(road)
        profile = np.tile(day_profile, self.days)
        total = MINUTES_PER_DAY * self.days
        noise = rng.lognormal(0.0, self._noise_sigma[road], size=total)
        multiplier = profile * noise
        # Incident episodes: sudden 2-4x slowdowns lasting 15-90 minutes.
        expected = self._incident_rate[road] * self.days
        for _ in range(rng.poisson(expected)):
            start = rng.integers(0, total)
            duration = rng.integers(15, 90)
            severity = rng.uniform(2.0, 4.0)
            multiplier[start : start + duration] *= severity
        values = self._free_flow[road] * multiplier
        self._series_cache[road] = values
        return values

    def reference_weight(self, road: int, percentile: float = 10.0) -> float:
        """The paper's ``omega(e)``: a low percentile of historical times."""
        return float(np.percentile(self.series(road), percentile))

    # ------------------------------------------------------------------
    def count_updates(self, road: int, c: float) -> int:
        """Number of normal<->congested transitions of *road* at threshold *c*."""
        if c <= 1.0:
            raise GraphError(f"threshold c must be > 1, got {c}")
        series = self.series(road)
        congested = series > c * self.reference_weight(road)
        return int(np.count_nonzero(congested[1:] != congested[:-1]))

    def average_update_rate(self, c: float) -> float:
        """Average updates per minute per road across the whole simulation."""
        total_minutes = MINUTES_PER_DAY * self.days
        total = sum(self.count_updates(road, c) for road in range(self.n_roads))
        return total / (self.n_roads * total_minutes)

    def update_rate_by_minute(
        self, c: float, bucket_minutes: int = 30
    ) -> List[TrafficObservation]:
        """The Fig. 2f series: update rate per minute per road vs time of day.

        Transitions are bucketed by minute-of-day across all roads and days,
        then normalized to updates / minute / road.
        """
        if bucket_minutes < 1 or MINUTES_PER_DAY % bucket_minutes != 0:
            raise GraphError(
                f"bucket_minutes must divide {MINUTES_PER_DAY}, got {bucket_minutes}"
            )
        buckets = np.zeros(MINUTES_PER_DAY // bucket_minutes, dtype=np.float64)
        for road in range(self.n_roads):
            series = self.series(road)
            congested = series > c * self.reference_weight(road)
            transition_minutes = np.nonzero(congested[1:] != congested[:-1])[0] + 1
            minute_of_day = transition_minutes % MINUTES_PER_DAY
            np.add.at(buckets, minute_of_day // bucket_minutes, 1.0)
        normalizer = self.n_roads * self.days * bucket_minutes
        return [
            TrafficObservation(
                minute_of_day=i * bucket_minutes,
                updates_per_minute_per_road=float(count) / normalizer,
            )
            for i, count in enumerate(buckets)
        ]

    def congestion_updates(self, road: int, c: float) -> List[tuple]:
        """Concrete weight updates for *road*: ``(minute, new_weight)`` pairs.

        At each transition into congestion the weight becomes the observed
        congested transit time; at each recovery it returns to the
        reference weight.  Used by the traffic-navigation example to drive
        a live oracle.
        """
        series = self.series(road)
        omega = self.reference_weight(road)
        threshold = c * omega
        updates: List[tuple] = []
        congested = False
        for minute, value in enumerate(series):
            now_congested = value > threshold
            if now_congested != congested:
                new_weight = float(value) if now_congested else omega
                updates.append((minute, new_weight))
                congested = now_congested
        return updates

    def __repr__(self) -> str:
        return (
            f"TrafficModel(n_roads={self.n_roads}, days={self.days}, "
            f"minutes={MINUTES_PER_DAY * self.days})"
        )
