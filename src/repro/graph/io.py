"""Road-network file formats.

The paper's datasets come from the DIMACS 9th implementation challenge
(``.gr`` files) and Geofabrik extracts.  This module reads and writes the
DIMACS shortest-path format so that users with real DIMACS networks can
load them directly, plus a minimal whitespace-separated edge-list format
for small hand-made inputs.

DIMACS ``.gr`` format::

    c comment lines
    p sp <n> <m>
    a <u> <v> <w>        (1-based vertex ids; one line per directed arc)

The paper treats all networks as undirected; the reader therefore merges
arc pairs ``(u, v)`` / ``(v, u)`` and keeps the smaller weight when the two
directions disagree.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple, Union

from repro.errors import GraphError
from repro.graph.graph import RoadNetwork

__all__ = ["read_dimacs", "write_dimacs", "read_edge_list", "write_edge_list"]

PathLike = Union[str, "os.PathLike[str]"]


def read_dimacs(path: PathLike) -> RoadNetwork:
    """Read a DIMACS ``.gr`` file into a :class:`RoadNetwork`.

    Raises
    ------
    GraphError
        If the file is malformed (missing problem line, bad arc counts,
        out-of-range vertices).
    """
    n = -1
    declared_arcs = -1
    best: Dict[Tuple[int, int], float] = {}
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            if fields[0] == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise GraphError(f"{path}:{lineno}: bad problem line {line!r}")
                n, declared_arcs = int(fields[2]), int(fields[3])
            elif fields[0] == "a":
                if len(fields) != 4:
                    raise GraphError(f"{path}:{lineno}: bad arc line {line!r}")
                if n < 0:
                    raise GraphError(f"{path}: arc line before problem line")
                u, v = int(fields[1]) - 1, int(fields[2]) - 1
                w = float(fields[3])
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(f"{path}:{lineno}: vertex out of range")
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                if key not in best or w < best[key]:
                    best[key] = w
            else:
                raise GraphError(f"{path}:{lineno}: unknown line type {fields[0]!r}")
    if n < 0:
        raise GraphError(f"{path}: missing problem line")
    del declared_arcs  # informational only; undirected merge changes the count
    graph = RoadNetwork(n)
    for (u, v), w in best.items():
        graph.add_edge(u, v, w)
    return graph


def write_dimacs(graph: RoadNetwork, path: PathLike, comment: str = "") -> None:
    """Write *graph* as a DIMACS ``.gr`` file (both arc directions)."""
    with open(path, "w") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"c {line}\n")
        handle.write(f"p sp {graph.n} {2 * graph.m}\n")
        for u, v, w in graph.edges():
            weight = int(w) if float(w).is_integer() else w
            handle.write(f"a {u + 1} {v + 1} {weight}\n")
            handle.write(f"a {v + 1} {u + 1} {weight}\n")


def read_edge_list(path: PathLike) -> RoadNetwork:
    """Read a ``u v w`` whitespace edge list (0-based ids, ``#`` comments)."""
    triples = []
    max_vertex = -1
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 3:
                raise GraphError(f"{path}:{lineno}: expected 'u v w', got {line!r}")
            u, v, w = int(fields[0]), int(fields[1]), float(fields[2])
            triples.append((u, v, w))
            max_vertex = max(max_vertex, u, v)
    return RoadNetwork.from_edges(max_vertex + 1, triples)


def write_edge_list(graph: RoadNetwork, path: PathLike) -> None:
    """Write *graph* as a ``u v w`` edge list (one canonical line per edge)."""
    with open(path, "w") as handle:
        for u, v, w in graph.edges():
            handle.write(f"{u} {v} {w}\n")
