"""Road-network substrate: graph type, file formats, generators, traffic."""

from repro.graph.generators import (
    grid_network,
    random_connected_network,
    road_network,
)
from repro.graph.graph import INFINITY, RoadNetwork, WeightUpdate
from repro.graph.io import read_dimacs, read_edge_list, write_dimacs, write_edge_list
from repro.graph.traffic import TrafficModel, TrafficObservation

__all__ = [
    "INFINITY",
    "RoadNetwork",
    "TrafficModel",
    "TrafficObservation",
    "WeightUpdate",
    "grid_network",
    "random_connected_network",
    "read_dimacs",
    "read_edge_list",
    "road_network",
    "write_dimacs",
    "write_edge_list",
]
