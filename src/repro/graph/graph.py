"""The road-network graph type.

Following the paper's setting (Section 2), a road network is a connected
undirected weighted graph ``G = (V, E, phi)`` whose vertices are road
intersections, edges are road segments, and weights are non-negative
transit times.  Vertices are dense integers ``0 .. n-1`` so that every
index structure built on top (orderings, shortcut graphs, H2H arrays) can
use flat arrays.

Edge *weights* change frequently (traffic), the edge *set* rarely (road
construction); accordingly :class:`RoadNetwork` exposes a cheap
:meth:`~RoadNetwork.set_weight` / :meth:`~RoadNetwork.apply_batch` path for
weight updates and separate :meth:`~RoadNetwork.add_edge` /
:meth:`~RoadNetwork.remove_edge` operations for the rare structural
updates (Section 7 of the paper).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import GraphError, QueryError

__all__ = ["RoadNetwork", "WeightUpdate", "INFINITY", "canonical_edge"]

#: The weight used to represent a deleted / impassable road.
INFINITY = math.inf

#: A weight update: ``((u, v), new_weight)``.
WeightUpdate = Tuple[Tuple[int, int], float]


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """The canonical (sorted) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


class RoadNetwork:
    """An undirected weighted graph with dense integer vertices.

    Parameters
    ----------
    n:
        Number of vertices; vertex ids are ``0 .. n-1``.

    Example
    -------
    >>> g = RoadNetwork(3)
    >>> g.add_edge(0, 1, 5.0)
    >>> g.add_edge(1, 2, 2.0)
    >>> g.weight(0, 1)
    5.0
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_m")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._adj: List[Dict[int, float]] = [{} for _ in range(n)]
        self._m = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int, float]]
    ) -> "RoadNetwork":
        """Build a network from ``(u, v, weight)`` triples."""
        graph = cls(n)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    def copy(self) -> "RoadNetwork":
        """An independent deep copy of this network."""
        clone = RoadNetwork(self.n)
        clone._adj = [dict(nbrs) for nbrs in self._adj]
        clone._m = self._m
        return clone

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.n)

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise QueryError(f"vertex {v} out of range [0, {self.n})")

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``(u, v)`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """The weight of edge ``(u, v)``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbors of *u*."""
        self._check_vertex(u)
        return iter(self._adj[u])

    def neighbor_items(self, u: int):
        """Iterate over ``(neighbor, weight)`` pairs of *u*."""
        self._check_vertex(u)
        return self._adj[u].items()

    def degree(self, u: int) -> int:
        """Number of edges incident to *u*."""
        self._check_vertex(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all edges as canonical ``(u, v, weight)`` triples."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @staticmethod
    def _check_weight(w: float) -> float:
        if not isinstance(w, (int, float)):
            raise GraphError(f"weight must be a number, got {type(w).__name__}")
        if w < 0 or math.isnan(w):
            raise GraphError(f"weight must be non-negative, got {w}")
        return float(w)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add edge ``(u, v)`` with the given weight.

        Raises
        ------
        GraphError
            If the edge already exists, is a self-loop, or the weight is
            invalid.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) already exists")
        w = self._check_weight(weight)
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._m += 1

    def remove_edge(self, u: int, v: int) -> float:
        """Remove edge ``(u, v)`` and return its last weight."""
        w = self.weight(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._m -= 1
        return w

    def set_weight(self, u: int, v: int, weight: float) -> float:
        """Change the weight of an existing edge; return the old weight."""
        old = self.weight(u, v)
        w = self._check_weight(weight)
        self._adj[u][v] = w
        self._adj[v][u] = w
        return old

    def apply_batch(self, updates: Sequence[WeightUpdate]) -> List[WeightUpdate]:
        """Apply a batch of weight updates atomically; return the inverse.

        The whole batch is validated before the first weight is touched,
        so a bad update (unknown edge, negative/NaN weight) raises with
        the graph untouched — never with a prefix of the batch applied.

        The returned list restores the previous weights when passed back to
        :meth:`apply_batch`, which is how the experiment harness implements
        the paper's increase-then-restore protocol (Exp-1, Exp-2, Exp-4).
        """
        validated: List[Tuple[int, int, float, float]] = []
        for (u, v), w in updates:
            old = self.weight(u, v)
            validated.append((u, v, self._check_weight(w), old))
        inverse: List[WeightUpdate] = []
        for u, v, w, old in validated:
            self._adj[u][v] = w
            self._adj[v][u] = w
            inverse.append(((u, v), old))
        return inverse

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[int]]:
        """Connected components as lists of vertices (BFS, iterative)."""
        seen = [False] * self.n
        components: List[List[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            frontier = [start]
            while frontier:
                next_frontier: List[int] = []
                for u in frontier:
                    for v in self._adj[u]:
                        if not seen[v]:
                            seen[v] = True
                            component.append(v)
                            next_frontier.append(v)
                frontier = next_frontier
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True if the graph has at most one connected component."""
        return self.n <= 1 or len(self.connected_components()) == 1

    def total_weight(self) -> float:
        """Sum of all edge weights (useful for sanity checks)."""
        return sum(w for _, _, w in self.edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoadNetwork):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"RoadNetwork(n={self.n}, m={self.m})"
