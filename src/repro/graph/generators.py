"""Synthetic road-network generators.

The paper evaluates on nine real road networks (DIMACS / Geofabrik) of up
to 24M vertices, which a pure-Python reproduction cannot index at full
scale.  These generators produce *scaled-down synthetic analogues* with
the structural properties that drive CH/H2H behaviour on real road
networks:

* **near-planarity / small separators** — road networks have treewidth
  roughly ``O(sqrt(n))``; a perturbed grid has exactly that;
* **sparsity** — average degree between 2 and 3 (the paper's networks have
  ``|E|/|V|`` about 1.2-1.4 as undirected edge counts);
* **a road hierarchy** — a sparse overlay of fast long-range "highway"
  edges on top of slow local streets, which is what makes contraction
  hierarchies effective;
* **transit-time weights** — integer weights proportional to segment
  length divided by a road-class speed.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.errors import GraphError
from repro.graph.graph import RoadNetwork

__all__ = ["grid_network", "road_network", "random_connected_network"]


class _DisjointSet:
    """Union-find used to keep generated networks connected."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


def grid_network(
    rows: int,
    cols: int,
    seed: int = 0,
    min_weight: int = 10,
    max_weight: int = 100,
) -> RoadNetwork:
    """A ``rows x cols`` 4-connected grid with random integer weights.

    Vertex ``(r, c)`` has id ``r * cols + c``.

    Raises
    ------
    GraphError
        If either dimension is smaller than 1.
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be >= 1, got {rows}x{cols}")
    rng = random.Random(seed)
    graph = RoadNetwork(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1, rng.randint(min_weight, max_weight))
            if r + 1 < rows:
                graph.add_edge(v, v + cols, rng.randint(min_weight, max_weight))
    return graph


def road_network(
    n_target: int,
    seed: int = 0,
    deletion_rate: float = 0.18,
    diagonal_rate: float = 0.06,
    highway_rate: float = 0.02,
    min_weight: int = 10,
    max_weight: int = 100,
) -> RoadNetwork:
    """A synthetic road network with roughly *n_target* vertices.

    Construction: a near-square grid of local streets is perturbed by
    (1) deleting a fraction of street segments (dead ends, rivers),
    (2) adding diagonal streets, and (3) overlaying sparse fast highway
    segments that skip several blocks along a row or column.  A spanning
    forest of the kept edges is re-connected with previously deleted
    segments, so the result is always connected.

    The highway overlay gives the network the pronounced hierarchy that
    CH exploits; deletions break the grid's regularity so the minimum
    degree ordering is non-trivial.
    """
    if n_target < 4:
        raise GraphError(f"n_target must be >= 4, got {n_target}")
    rng = random.Random(seed)
    rows = max(2, int(math.sqrt(n_target)))
    cols = max(2, (n_target + rows - 1) // rows)
    n = rows * cols

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    def street_weight() -> int:
        return rng.randint(min_weight, max_weight)

    grid_edges: List[Tuple[int, int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                grid_edges.append((vertex(r, c), vertex(r, c + 1), street_weight()))
            if r + 1 < rows:
                grid_edges.append((vertex(r, c), vertex(r + 1, c), street_weight()))

    kept: List[Tuple[int, int, int]] = []
    deleted: List[Tuple[int, int, int]] = []
    for edge in grid_edges:
        (deleted if rng.random() < deletion_rate else kept).append(edge)

    # Re-connect using deleted edges so the network stays connected.
    dsu = _DisjointSet(n)
    for u, v, _ in kept:
        dsu.union(u, v)
    rng.shuffle(deleted)
    for u, v, w in deleted:
        if dsu.union(u, v):
            kept.append((u, v, w))

    graph = RoadNetwork(n)
    for u, v, w in kept:
        graph.add_edge(u, v, w)

    # Diagonal streets: weight ~ sqrt(2) x a local street.
    diagonal_count = int(diagonal_rate * len(grid_edges))
    for _ in range(diagonal_count):
        r = rng.randrange(rows - 1)
        c = rng.randrange(cols - 1)
        u = vertex(r, c)
        v = vertex(r + 1, c + 1) if rng.random() < 0.5 else vertex(r + 1, c)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, int(street_weight() * 1.4))

    # Highways: skip 2-6 blocks at roughly half the per-block cost.
    highway_count = int(highway_rate * n)
    for _ in range(highway_count):
        span = rng.randint(2, 6)
        if rng.random() < 0.5 and cols > span:
            r = rng.randrange(rows)
            c = rng.randrange(cols - span)
            u, v = vertex(r, c), vertex(r, c + span)
        elif rows > span:
            r = rng.randrange(rows - span)
            c = rng.randrange(cols)
            u, v = vertex(r, c), vertex(r + span, c)
        else:
            continue
        if not graph.has_edge(u, v):
            weight = max(min_weight, int(span * (min_weight + max_weight) / 4))
            graph.add_edge(u, v, weight)

    return graph


def random_connected_network(
    n: int,
    extra_edges: int,
    seed: int = 0,
    min_weight: int = 1,
    max_weight: int = 50,
) -> RoadNetwork:
    """A random connected graph: random spanning tree plus *extra_edges*.

    Not road-like; used by property-based tests to exercise the algorithms
    on adversarially unstructured inputs.
    """
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    rng = random.Random(seed)
    graph = RoadNetwork(n)
    vertices = list(range(n))
    rng.shuffle(vertices)
    for i in range(1, n):
        u = vertices[i]
        v = vertices[rng.randrange(i)]
        graph.add_edge(u, v, rng.randint(min_weight, max_weight))
    attempts = 0
    added = 0
    max_attempts = 20 * extra_edges + 20
    while added < extra_edges and attempts < max_attempts:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.randint(min_weight, max_weight))
            added += 1
    return graph
