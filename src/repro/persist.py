"""Index persistence: save/load CH and H2H indexes to a single file.

Building H2H on a large network is the expensive step (Fig. 3a);
shipping the built index and maintaining it incrementally is exactly
the deployment story the paper targets.  This module serializes both
index types to compressed ``.npz`` archives:

* **CH**: the ordering, the shortcut triples ``(u, v, phi(u,v))``, the
  graph's edge weights, and the ``sup``/``via`` auxiliaries;
* **H2H**: the underlying CH payload plus the ``dis``/``sup`` matrices
  (the tree decomposition is weight independent and is rebuilt
  deterministically from the shortcut structure on load).

Round-trips are exact: loading produces an index that compares equal,
entry for entry, to the saved one, and can be maintained further with
DCH / IncH2H.

Reliability (see ``src/repro/reliability/``):

* writes are **crash safe** — the payload goes to ``path + ".tmp"`` and
  is published with :func:`os.replace`, so a process dying mid-save can
  never leave a truncated archive at the destination;
* every archive embeds a **CRC-32 checksum** over all payload arrays,
  verified on load; a truncated, corrupted or non-archive file raises
  :class:`repro.errors.IntegrityError` (a :class:`ReproError`), never a
  raw ``zipfile`` / ``numpy`` exception.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import Dict, List, Union

import numpy as np

from repro.ch.shortcut_graph import ShortcutGraph
from repro.errors import IntegrityError, ReproError
from repro.h2h.index import H2HIndex
from repro.h2h.tree import TreeDecomposition
from repro.order.ordering import Ordering

__all__ = ["save_ch", "load_ch", "save_h2h", "load_h2h"]

PathLike = Union[str, "os.PathLike[str]"]

_CH_FORMAT = 1
_H2H_FORMAT = 1

#: Archive key holding the embedded payload checksum.
_CHECKSUM_KEY = "integrity_crc32"


# ----------------------------------------------------------------------
# Integrity: embedded checksum + atomic publication
# ----------------------------------------------------------------------
def _payload_checksum(payload: Dict[str, np.ndarray]) -> int:
    """CRC-32 over every payload array (key, dtype, shape and bytes).

    Deterministic: keys are visited in sorted order, arrays are made
    contiguous before hashing, so the same logical payload always hashes
    to the same value regardless of construction order.
    """
    crc = 0
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.shape).encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc & 0xFFFFFFFF


def _atomic_savez(path: PathLike, payload: Dict[str, np.ndarray]) -> None:
    """Write *payload* as a compressed ``.npz`` atomically.

    The archive is fully written and fsynced at ``path + ".tmp"`` before
    a single :func:`os.replace` publishes it, so readers only ever see
    either the old complete archive or the new complete archive.
    """
    payload = dict(payload)
    payload[_CHECKSUM_KEY] = np.array([_payload_checksum(payload)],
                                      dtype=np.uint32)
    dest = os.fspath(path)
    tmp = dest + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, dest)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _read_payload(path: PathLike, kind: str) -> Dict[str, np.ndarray]:
    """Read every array of an archive eagerly, verifying integrity.

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, not a zip/npz archive, or its
        embedded checksum does not match the stored arrays.
    """
    try:
        with np.load(path) as data:
            payload = {key: np.array(data[key]) for key in data.files}
    except FileNotFoundError as exc:
        raise IntegrityError(f"{kind} archive {path} does not exist") from exc
    except (zipfile.BadZipFile, zlib.error, ValueError, EOFError,
            KeyError, OSError) as exc:
        raise IntegrityError(
            f"cannot read {kind} archive {path}: "
            f"file is truncated, corrupted or not an .npz archive ({exc})"
        ) from exc
    stored = payload.pop(_CHECKSUM_KEY, None)
    if stored is not None:
        actual = _payload_checksum(payload)
        if int(stored[0]) != actual:
            raise IntegrityError(
                f"{kind} archive {path} failed its integrity check: "
                f"stored checksum {int(stored[0]):#010x}, "
                f"recomputed {actual:#010x}"
            )
    return payload


# ----------------------------------------------------------------------
# CH
# ----------------------------------------------------------------------
def _ch_payload(index: ShortcutGraph) -> Dict[str, np.ndarray]:
    records = list(index.shortcut_records())
    us = np.array([u for u, _, _, _, _ in records], dtype=np.int64)
    vs = np.array([v for _, v, _, _, _ in records], dtype=np.int64)
    weights = np.array([w for _, _, w, _, _ in records])
    sups = np.array([sup for _, _, _, sup, _ in records], dtype=np.int64)
    vias = np.array([-1 if via is None else via
                     for _, _, _, _, via in records], dtype=np.int64)
    edge_items = sorted(index.edge_weights().items())
    edge_us = np.array([u for (u, _), _ in edge_items], dtype=np.int64)
    edge_vs = np.array([v for (_, v), _ in edge_items], dtype=np.int64)
    edge_ws = np.array([w for _, w in edge_items])
    return {
        "ch_format": np.array([_CH_FORMAT]),
        "order": np.array(index.ordering.order, dtype=np.int64),
        "sc_u": us,
        "sc_v": vs,
        "sc_w": weights,
        "sc_sup": sups,
        "sc_via": vias,
        "edge_u": edge_us,
        "edge_v": edge_vs,
        "edge_w": edge_ws,
    }


def save_ch(index: ShortcutGraph, path: PathLike) -> None:
    """Serialize a CH index to a compressed ``.npz`` archive.

    The write is atomic (tmp file + :func:`os.replace`) and the archive
    embeds a checksum verified by :func:`load_ch`.
    """
    _atomic_savez(path, _ch_payload(index))


def _ch_from_payload(data: Dict[str, np.ndarray]) -> ShortcutGraph:
    if int(data["ch_format"][0]) != _CH_FORMAT:
        raise ReproError(
            f"unsupported CH archive format {int(data['ch_format'][0])}"
        )
    ordering = Ordering([int(x) for x in data["order"]])
    n = len(ordering)
    adj: List[Dict[int, float]] = [{} for _ in range(n)]
    for u, v, w in zip(data["sc_u"], data["sc_v"], data["sc_w"]):
        adj[int(u)][int(v)] = float(w)
        adj[int(v)][int(u)] = float(w)
    edge_weights = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(data["edge_u"], data["edge_v"], data["edge_w"])
    }
    index = ShortcutGraph(ordering, adj, edge_weights)
    for u, v, sup, via in zip(
        data["sc_u"], data["sc_v"], data["sc_sup"], data["sc_via"]
    ):
        index.set_support(int(u), int(v), int(sup))
        index.set_via(int(u), int(v), None if int(via) < 0 else int(via))
    return index


def load_ch(path: PathLike) -> ShortcutGraph:
    """Load a CH index saved with :func:`save_ch`.

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, corrupted or fails its
        embedded checksum.
    ReproError
        If the archive is readable but not a CH archive (or a newer
        format).
    """
    data = _read_payload(path, "CH")
    if "ch_format" not in data:
        raise ReproError(f"{path} is not a repro CH archive")
    return _ch_from_payload(data)


# ----------------------------------------------------------------------
# H2H
# ----------------------------------------------------------------------
def save_h2h(index: H2HIndex, path: PathLike) -> None:
    """Serialize an H2H index (including its CH) to one ``.npz`` archive.

    Atomic and checksummed exactly like :func:`save_ch`.
    """
    payload = _ch_payload(index.sc)
    payload["h2h_format"] = np.array([_H2H_FORMAT])
    payload["dis"] = index.dis
    payload["sup_matrix"] = index.sup
    _atomic_savez(path, payload)


def load_h2h(path: PathLike) -> H2HIndex:
    """Load an H2H index saved with :func:`save_h2h`.

    The tree decomposition (ancestor/position arrays, DFS times, LCA
    tables) is rebuilt from the loaded shortcut structure; it is weight
    independent, so the rebuild is deterministic and exact.

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, corrupted or fails its
        embedded checksum.
    ReproError
        If the archive is readable but not an H2H archive.
    """
    data = _read_payload(path, "H2H")
    if "h2h_format" not in data:
        raise ReproError(f"{path} is not a repro H2H archive")
    if int(data["h2h_format"][0]) != _H2H_FORMAT:
        raise ReproError(
            f"unsupported H2H archive format {int(data['h2h_format'][0])}"
        )
    sc = _ch_from_payload(data)
    dis = np.array(data["dis"], dtype=np.float64)
    sup = np.array(data["sup_matrix"], dtype=np.int32)
    tree = TreeDecomposition(sc)
    if dis.shape != (tree.n, tree.height):
        raise ReproError(
            f"distance matrix shape {dis.shape} does not match the "
            f"decomposition ({tree.n} x {tree.height})"
        )
    return H2HIndex(sc, tree, dis, sup)
