"""Index persistence: save/load CH and H2H indexes to a single file.

Building H2H on a large network is the expensive step (Fig. 3a);
shipping the built index and maintaining it incrementally is exactly
the deployment story the paper targets.  This module serializes both
index types to compressed ``.npz`` archives:

* **CH**: the ordering, the shortcut triples ``(u, v, phi(u,v))``, the
  graph's edge weights, and the ``sup``/``via`` auxiliaries;
* **H2H**: the underlying CH payload plus the ``dis``/``sup`` matrices
  (the tree decomposition is weight independent and is rebuilt
  deterministically from the shortcut structure on load).

Round-trips are exact: loading produces an index that compares equal,
entry for entry, to the saved one, and can be maintained further with
DCH / IncH2H.
"""

from __future__ import annotations

import os
from typing import Dict, List, Union

import numpy as np

from repro.ch.shortcut_graph import ShortcutGraph
from repro.errors import ReproError
from repro.h2h.index import H2HIndex
from repro.h2h.tree import TreeDecomposition
from repro.order.ordering import Ordering

__all__ = ["save_ch", "load_ch", "save_h2h", "load_h2h"]

PathLike = Union[str, "os.PathLike[str]"]

_CH_FORMAT = 1
_H2H_FORMAT = 1


def _ch_payload(index: ShortcutGraph) -> Dict[str, np.ndarray]:
    shortcuts = list(index.shortcuts())
    us = np.array([u for u, _ in shortcuts], dtype=np.int64)
    vs = np.array([v for _, v in shortcuts], dtype=np.int64)
    weights = np.array([index.weight(u, v) for u, v in shortcuts])
    sups = np.array([index.support(u, v) for u, v in shortcuts],
                    dtype=np.int64)
    vias = np.array(
        [-1 if index.via(u, v) is None else index.via(u, v)
         for u, v in shortcuts],
        dtype=np.int64,
    )
    edge_items = sorted(index._edge_w.items())
    edge_us = np.array([u for (u, _), _ in edge_items], dtype=np.int64)
    edge_vs = np.array([v for (_, v), _ in edge_items], dtype=np.int64)
    edge_ws = np.array([w for _, w in edge_items])
    return {
        "ch_format": np.array([_CH_FORMAT]),
        "order": np.array(index.ordering.order, dtype=np.int64),
        "sc_u": us,
        "sc_v": vs,
        "sc_w": weights,
        "sc_sup": sups,
        "sc_via": vias,
        "edge_u": edge_us,
        "edge_v": edge_vs,
        "edge_w": edge_ws,
    }


def save_ch(index: ShortcutGraph, path: PathLike) -> None:
    """Serialize a CH index to a compressed ``.npz`` archive."""
    np.savez_compressed(path, **_ch_payload(index))


def _ch_from_payload(data) -> ShortcutGraph:
    if int(data["ch_format"][0]) != _CH_FORMAT:
        raise ReproError(
            f"unsupported CH archive format {int(data['ch_format'][0])}"
        )
    ordering = Ordering([int(x) for x in data["order"]])
    n = len(ordering)
    adj: List[Dict[int, float]] = [{} for _ in range(n)]
    for u, v, w in zip(data["sc_u"], data["sc_v"], data["sc_w"]):
        adj[int(u)][int(v)] = float(w)
        adj[int(v)][int(u)] = float(w)
    edge_weights = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(data["edge_u"], data["edge_v"], data["edge_w"])
    }
    index = ShortcutGraph(ordering, adj, edge_weights)
    for u, v, sup, via in zip(
        data["sc_u"], data["sc_v"], data["sc_sup"], data["sc_via"]
    ):
        key = (int(u), int(v))
        index._sup[key] = int(sup)
        index._via[key] = None if int(via) < 0 else int(via)
    return index


def load_ch(path: PathLike) -> ShortcutGraph:
    """Load a CH index saved with :func:`save_ch`.

    Raises
    ------
    ReproError
        If the archive is not a CH archive (or a newer format).
    """
    with np.load(path) as data:
        if "ch_format" not in data:
            raise ReproError(f"{path} is not a repro CH archive")
        return _ch_from_payload(data)


def save_h2h(index: H2HIndex, path: PathLike) -> None:
    """Serialize an H2H index (including its CH) to one ``.npz`` archive."""
    payload = _ch_payload(index.sc)
    payload["h2h_format"] = np.array([_H2H_FORMAT])
    payload["dis"] = index.dis
    payload["sup_matrix"] = index.sup
    np.savez_compressed(path, **payload)


def load_h2h(path: PathLike) -> H2HIndex:
    """Load an H2H index saved with :func:`save_h2h`.

    The tree decomposition (ancestor/position arrays, DFS times, LCA
    tables) is rebuilt from the loaded shortcut structure; it is weight
    independent, so the rebuild is deterministic and exact.
    """
    with np.load(path) as data:
        if "h2h_format" not in data:
            raise ReproError(f"{path} is not a repro H2H archive")
        if int(data["h2h_format"][0]) != _H2H_FORMAT:
            raise ReproError(
                f"unsupported H2H archive format {int(data['h2h_format'][0])}"
            )
        sc = _ch_from_payload(data)
        dis = np.array(data["dis"], dtype=np.float64)
        sup = np.array(data["sup_matrix"], dtype=np.int32)
    tree = TreeDecomposition(sc)
    if dis.shape != (tree.n, tree.height):
        raise ReproError(
            f"distance matrix shape {dis.shape} does not match the "
            f"decomposition ({tree.n} x {tree.height})"
        )
    return H2HIndex(sc, tree, dis, sup)
