"""Index persistence: save/load CH and H2H indexes.

Building H2H on a large network is the expensive step (Fig. 3a);
shipping the built index and maintaining it incrementally is exactly
the deployment story the paper targets.  This module serializes both
index types in two on-disk formats:

* ``format="npz"`` (default) — one compressed ``.npz`` archive,
  loaded eagerly;
* ``format="bundle"`` — a directory of raw ``.npy`` pages plus a
  ``manifest.json``.  Bundles exist for the columnar backend: each
  page can be opened with ``np.load(..., mmap_mode="r")``, so
  :func:`load_h2h` on a bundle returns a
  :class:`repro.columnar.ColumnarH2HIndex` whose ``dis``/``sup``
  matrices — the dominant bytes — are memory mapped rather than
  materialized.  ``numpy`` refuses to mmap members of an ``.npz``
  (the zip container forces a full decompress), which is why the
  mmap path needs its own directory format.

The payload is identical either way: the ordering, the shortcut
triples ``(u, v, phi(u,v))``, the graph's edge weights, the
``sup``/``via`` auxiliaries, and for H2H the ``dis``/``sup`` matrices
(the tree decomposition is weight independent and is rebuilt
deterministically from the shortcut structure on load).  Round-trips
are exact: loading produces an index that compares equal, entry for
entry, to the saved one, and can be maintained further with DCH /
IncH2H.

Reliability (see ``src/repro/reliability/``):

* writes are **crash safe** — ``.npz`` archives go to ``path + ".tmp"``
  and are published with :func:`os.replace`; bundles are fully written
  to a temp directory and published with a rename-aside swap — so a
  process dying mid-save never leaves a truncated payload at the
  destination;
* every archive embeds a **CRC-32 checksum** over all payload arrays;
  eager loads verify it in full, while mmap loads (whose entire point
  is not reading the data pages up front) verify the manifest against
  each page's on-disk header and size, which rejects truncation —
  a truncated, corrupted or non-archive file raises
  :class:`repro.errors.IntegrityError` (a :class:`ReproError`), never a
  raw ``zipfile`` / ``numpy`` exception.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
import zlib
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ch.shortcut_graph import ShortcutGraph
from repro.errors import IntegrityError, ReproError
from repro.h2h.index import H2HIndex
from repro.h2h.tree import TreeDecomposition
from repro.order.ordering import Ordering

__all__ = ["save_ch", "load_ch", "save_h2h", "load_h2h"]

PathLike = Union[str, "os.PathLike[str]"]

_CH_FORMAT = 1
_H2H_FORMAT = 1

#: Archive key holding the embedded payload checksum.
_CHECKSUM_KEY = "integrity_crc32"

#: Manifest file name inside a bundle directory.
_MANIFEST = "manifest.json"


# ----------------------------------------------------------------------
# Integrity: embedded checksum + atomic publication
# ----------------------------------------------------------------------
def _payload_checksum(payload: Dict[str, np.ndarray]) -> int:
    """CRC-32 over every payload array (key, dtype, shape and bytes).

    Deterministic: keys are visited in sorted order, arrays are made
    contiguous before hashing, so the same logical payload always hashes
    to the same value regardless of construction order.
    """
    crc = 0
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(arr.shape).encode("utf-8"), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc & 0xFFFFFFFF


def _atomic_savez(path: PathLike, payload: Dict[str, np.ndarray]) -> None:
    """Write *payload* as a compressed ``.npz`` atomically.

    The archive is fully written and fsynced at ``path + ".tmp"`` before
    a single :func:`os.replace` publishes it, so readers only ever see
    either the old complete archive or the new complete archive.
    """
    payload = dict(payload)
    payload[_CHECKSUM_KEY] = np.array([_payload_checksum(payload)],
                                      dtype=np.uint32)
    dest = os.fspath(path)
    tmp = dest + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, dest)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _atomic_save_bundle(path: PathLike, payload: Dict[str, np.ndarray]) -> None:
    """Write *payload* as a directory bundle of ``.npy`` pages atomically.

    Everything lands in ``path + ".tmp"`` first; publication is a
    rename-aside swap (``os.replace`` cannot replace a non-empty
    directory), so readers only ever see a complete bundle.
    """
    dest = os.fspath(path)
    tmp = dest + ".tmp"
    aside = dest + ".old"
    if os.path.isdir(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        arrays = {}
        for key, arr in payload.items():
            arr = np.ascontiguousarray(arr)
            np.save(os.path.join(tmp, key + ".npy"), arr)
            arrays[key] = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
                "nbytes": int(arr.nbytes),
            }
        manifest = {
            "crc32": _payload_checksum(payload),
            "arrays": arrays,
        }
        manifest_tmp = os.path.join(tmp, _MANIFEST)
        with open(manifest_tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        if os.path.isdir(aside):
            shutil.rmtree(aside)
        if os.path.exists(dest):
            os.rename(dest, aside)
        os.rename(tmp, dest)
        if os.path.isdir(aside):
            shutil.rmtree(aside)
    finally:
        if os.path.isdir(tmp):
            shutil.rmtree(tmp)


def _read_bundle(
    path: PathLike, kind: str, mmap_mode: Optional[str]
) -> Dict[str, np.ndarray]:
    """Read a bundle directory, verifying integrity.

    With *mmap_mode* each page comes back memory mapped and integrity
    checking is structural — the manifest's dtype/shape/size against
    each page's ``.npy`` header and on-disk size, which rejects
    truncated or swapped pages without touching the data bytes.  An
    eager read (``mmap_mode=None``) additionally verifies the embedded
    CRC-32 over the full payload, like the ``.npz`` path.
    """
    root = os.fspath(path)
    manifest_path = os.path.join(root, _MANIFEST)
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise IntegrityError(
            f"{kind} bundle {root} has no {_MANIFEST}"
        ) from exc
    except (json.JSONDecodeError, OSError) as exc:
        raise IntegrityError(
            f"cannot read {kind} bundle manifest {manifest_path}: {exc}"
        ) from exc
    payload: Dict[str, np.ndarray] = {}
    for key, meta in manifest.get("arrays", {}).items():
        page_path = os.path.join(root, key + ".npy")
        if not os.path.isfile(page_path):
            raise IntegrityError(f"{kind} bundle {root} is missing page {key}")
        if os.path.getsize(page_path) < int(meta["nbytes"]):
            raise IntegrityError(
                f"{kind} bundle page {page_path} is truncated "
                f"({os.path.getsize(page_path)} bytes on disk, "
                f"{meta['nbytes']} of array data expected)"
            )
        try:
            arr = np.load(page_path, mmap_mode=mmap_mode, allow_pickle=False)
        except (ValueError, OSError, EOFError) as exc:
            raise IntegrityError(
                f"cannot read {kind} bundle page {page_path}: {exc}"
            ) from exc
        if str(arr.dtype) != meta["dtype"] or list(arr.shape) != meta["shape"]:
            raise IntegrityError(
                f"{kind} bundle page {page_path} does not match its "
                f"manifest entry (dtype {arr.dtype}, shape {arr.shape})"
            )
        payload[key] = arr
    if mmap_mode is None:
        stored = manifest.get("crc32")
        if stored is not None and int(stored) != _payload_checksum(payload):
            raise IntegrityError(
                f"{kind} bundle {root} failed its integrity check"
            )
    return payload


def _read_payload(path: PathLike, kind: str) -> Dict[str, np.ndarray]:
    """Read every array of an archive eagerly, verifying integrity.

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, not a zip/npz archive, or its
        embedded checksum does not match the stored arrays.
    """
    try:
        with np.load(path) as data:
            payload = {key: np.array(data[key]) for key in data.files}
    except FileNotFoundError as exc:
        raise IntegrityError(f"{kind} archive {path} does not exist") from exc
    except (zipfile.BadZipFile, zlib.error, ValueError, EOFError,
            KeyError, OSError) as exc:
        raise IntegrityError(
            f"cannot read {kind} archive {path}: "
            f"file is truncated, corrupted or not an .npz archive ({exc})"
        ) from exc
    stored = payload.pop(_CHECKSUM_KEY, None)
    if stored is not None:
        actual = _payload_checksum(payload)
        if int(stored[0]) != actual:
            raise IntegrityError(
                f"{kind} archive {path} failed its integrity check: "
                f"stored checksum {int(stored[0]):#010x}, "
                f"recomputed {actual:#010x}"
            )
    return payload


# ----------------------------------------------------------------------
# CH
# ----------------------------------------------------------------------
def _ch_payload(index: ShortcutGraph) -> Dict[str, np.ndarray]:
    records = list(index.shortcut_records())
    us = np.array([u for u, _, _, _, _ in records], dtype=np.int64)
    vs = np.array([v for _, v, _, _, _ in records], dtype=np.int64)
    weights = np.array([w for _, _, w, _, _ in records])
    sups = np.array([sup for _, _, _, sup, _ in records], dtype=np.int64)
    vias = np.array([-1 if via is None else via
                     for _, _, _, _, via in records], dtype=np.int64)
    edge_items = sorted(index.edge_weights().items())
    edge_us = np.array([u for (u, _), _ in edge_items], dtype=np.int64)
    edge_vs = np.array([v for (_, v), _ in edge_items], dtype=np.int64)
    edge_ws = np.array([w for _, w in edge_items])
    return {
        "ch_format": np.array([_CH_FORMAT]),
        "order": np.array(index.ordering.order, dtype=np.int64),
        "sc_u": us,
        "sc_v": vs,
        "sc_w": weights,
        "sc_sup": sups,
        "sc_via": vias,
        "edge_u": edge_us,
        "edge_v": edge_vs,
        "edge_w": edge_ws,
    }


def save_ch(
    index: ShortcutGraph, path: PathLike, *, format: str = "npz"
) -> None:
    """Serialize a CH index.

    ``format="npz"`` writes one compressed archive; ``format="bundle"``
    writes a directory of ``.npy`` pages that :func:`load_ch` can open
    memory mapped.  Both writes are atomic and checksummed.
    """
    if format == "bundle":
        _atomic_save_bundle(path, _ch_payload(index))
    elif format == "npz":
        _atomic_savez(path, _ch_payload(index))
    else:
        raise ValueError(f"unknown archive format {format!r}")


def _ch_from_payload(data: Dict[str, np.ndarray]) -> ShortcutGraph:
    if int(data["ch_format"][0]) != _CH_FORMAT:
        raise ReproError(
            f"unsupported CH archive format {int(data['ch_format'][0])}"
        )
    ordering = Ordering([int(x) for x in data["order"]])
    n = len(ordering)
    adj: List[Dict[int, float]] = [{} for _ in range(n)]
    for u, v, w in zip(data["sc_u"], data["sc_v"], data["sc_w"]):
        adj[int(u)][int(v)] = float(w)
        adj[int(v)][int(u)] = float(w)
    edge_weights = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(data["edge_u"], data["edge_v"], data["edge_w"])
    }
    index = ShortcutGraph(ordering, adj, edge_weights)
    for u, v, sup, via in zip(
        data["sc_u"], data["sc_v"], data["sc_sup"], data["sc_via"]
    ):
        index.set_support(int(u), int(v), int(sup))
        index.set_via(int(u), int(v), None if int(via) < 0 else int(via))
    return index


def load_ch(path: PathLike, *, mmap_mode: Optional[str] = None) -> ShortcutGraph:
    """Load a CH index saved with :func:`save_ch`.

    A bundle directory loads as a columnar index
    (:class:`repro.columnar.ColumnarShortcutGraph`); *mmap_mode* is
    honored per page while the structural state is rebuilt eagerly (a
    CH archive is dominated by structure, not pages — the mmap path
    matters for H2H, whose matrices dwarf everything else).

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, corrupted or fails its
        embedded checksum.
    ReproError
        If the archive is readable but not a CH archive (or a newer
        format).
    """
    if os.path.isdir(path):
        from repro.columnar import ColumnarShortcutGraph

        data = _read_bundle(path, "CH", mmap_mode)
        if "ch_format" not in data:
            raise ReproError(f"{path} is not a repro CH archive")
        return ColumnarShortcutGraph.from_shortcut_graph(_ch_from_payload(data))
    data = _read_payload(path, "CH")
    if "ch_format" not in data:
        raise ReproError(f"{path} is not a repro CH archive")
    return _ch_from_payload(data)


# ----------------------------------------------------------------------
# H2H
# ----------------------------------------------------------------------
def save_h2h(
    index: H2HIndex, path: PathLike, *, format: str = "npz"
) -> None:
    """Serialize an H2H index (including its CH).

    ``format="npz"`` writes one compressed archive; ``format="bundle"``
    writes a directory of ``.npy`` pages — the columnar snapshot form,
    whose ``dis``/``sup`` matrices :func:`load_h2h` can memory map.
    Atomic and checksummed exactly like :func:`save_ch`.
    """
    payload = _ch_payload(index.sc)
    payload["h2h_format"] = np.array([_H2H_FORMAT])
    payload["dis"] = np.asarray(index.dis)
    payload["sup_matrix"] = np.asarray(index.sup)
    if format == "bundle":
        _atomic_save_bundle(path, payload)
    elif format == "npz":
        _atomic_savez(path, payload)
    else:
        raise ValueError(f"unknown archive format {format!r}")


def load_h2h(path: PathLike, *, mmap_mode: Optional[str] = None) -> H2HIndex:
    """Load an H2H index saved with :func:`save_h2h`.

    The tree decomposition (ancestor/position arrays, DFS times, LCA
    tables) is rebuilt from the loaded shortcut structure; it is weight
    independent, so the rebuild is deterministic and exact.

    A bundle directory loads as a columnar index
    (:class:`repro.columnar.ColumnarH2HIndex`).  With
    ``mmap_mode="r"`` its ``dis``/``sup`` matrices — the dominant
    bytes of an H2H snapshot — stay memory mapped: the open cost is
    the structural rebuild, no matrix is materialized before first
    use, and the first maintenance write triggers the ordinary
    copy-on-write page copy (read-only pages are never written).

    Raises
    ------
    IntegrityError
        If the file is missing, truncated, corrupted or fails its
        embedded checksum.
    ReproError
        If the archive is readable but not an H2H archive.
    """
    if os.path.isdir(path):
        from repro.columnar import ColumnarH2HIndex

        data = _read_bundle(path, "H2H", mmap_mode)
        return ColumnarH2HIndex.from_index(_h2h_from_payload(path, data))
    return _h2h_from_payload(path, _read_payload(path, "H2H"))


def _h2h_from_payload(path: PathLike, data: Dict[str, np.ndarray]) -> H2HIndex:
    if "h2h_format" not in data:
        raise ReproError(f"{path} is not a repro H2H archive")
    if int(data["h2h_format"][0]) != _H2H_FORMAT:
        raise ReproError(
            f"unsupported H2H archive format {int(data['h2h_format'][0])}"
        )
    sc = _ch_from_payload(data)
    dis = data["dis"]
    sup = data["sup_matrix"]
    if not isinstance(dis, np.memmap):
        dis = np.array(dis, dtype=np.float64)
        sup = np.array(sup, dtype=np.int32)
    tree = TreeDecomposition(sc)
    if dis.shape != (tree.n, tree.height):
        raise ReproError(
            f"distance matrix shape {dis.shape} does not match the "
            f"decomposition ({tree.n} x {tree.height})"
        )
    return H2HIndex(sc, tree, dis, sup)
