"""Boundary-vertex distance table: the fleet's cross-shard glue.

Implements the query algebra from docs/sharding.md:

    d(s, t) = min over boundary b1, b2 of
              ROW_OUT[s, b1] + DB[b1, b2] + ROW_IN[b2, t]

where ``ROW_OUT[v, j]`` / ``ROW_IN[v, j]`` are the home-shard distances
``d_shard(v -> b_j)`` / ``d_shard(b_j -> v)`` (one Dijkstra per
boundary vertex per shard — two for directed graphs) and ``DB`` is the
all-pairs closure over the boundary: the element-wise minimum of the
direct boundary–boundary overlay edges and every shard's boundary
clique, closed with a vectorised Floyd–Warshall.  Boundary vertices
carry unit rows (0 at their own index, ∞ elsewhere) so ``DB`` is never
double-counted.

Two numerical conventions make this exact rather than approximate:

* the virtual connectivity chain (:data:`repro.fleet.partition.VIRTUAL_WEIGHT`)
  pollutes only sums ``>= 2**49``, which :func:`BoundaryTable.combo_many`
  maps back to ∞ — every real distance is far below the cutoff and
  float64 keeps all sums in play exactly integral;
* ``OUTD = ROW_OUT ⊗ DB`` is precomputed once per fleet epoch, so a
  query is a single length-``|B|`` min-plus reduction
  (``(OUTD[s] + ROW_IN[t]).min()``) and a batch is one vectorised
  ``np.min`` over an ``(m, |B|)`` array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dijkstra import dijkstra
from repro.directed.dijkstra import directed_dijkstra
from repro.fleet.partition import VIRTUAL_WEIGHT, Partition, shard_local_ids

#: Any assembled distance at or above this is virtual-chain pollution
#: (or genuine unreachability) and reads back as infinity.
VIRTUAL_CUTOFF: float = VIRTUAL_WEIGHT

#: Per-shard row bundle: (out_block, in_block, clique) where the blocks
#: cover the shard's interior vertices and clique is |B| x |B|.
ShardRows = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class BoundaryTable:
    """Immutable cross-shard distance table for one fleet epoch.

    ``boundary`` lists the global ids in boundary-index order; ``db``,
    ``row_out``, ``row_in`` and ``outd`` are as described in the module
    docstring.  Instances are shared by reference inside
    :class:`repro.fleet.coordinator.FleetSnapshot` — readers pinned on
    an old snapshot keep the old table untouched while a publish swaps
    in a new one.
    """

    version: int
    boundary: np.ndarray
    db: np.ndarray
    row_out: np.ndarray
    row_in: np.ndarray
    outd: np.ndarray

    @property
    def size(self) -> int:
        """Number of boundary vertices."""
        return int(self.boundary.shape[0])

    def combo(self, s: int, t: int) -> float:
        """Best boundary-routed distance ``s -> t`` (∞ if none)."""
        if self.size == 0:
            return float("inf")
        value = float(np.min(self.outd[s] + self.row_in[t]))
        return float("inf") if value >= VIRTUAL_CUTOFF else value

    def combo_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Vectorised :meth:`combo` over aligned source/target arrays."""
        m = len(sources)
        if self.size == 0:
            return np.full(m, np.inf)
        values = np.min(
            self.outd[np.asarray(sources)] + self.row_in[np.asarray(targets)],
            axis=1,
        )
        values[values >= VIRTUAL_CUTOFF] = np.inf
        return values


def shard_rows(shard_graph, interior: int, boundary: int) -> ShardRows:
    """Dijkstra row blocks for one shard graph (local vertex ids).

    Runs one SSSP per boundary vertex (two per vertex when the shard
    graph is directed) and returns ``(out_block, in_block, clique)``:
    ``out_block[i, j] = d(interior_i -> b_j)``, ``in_block[i, j] =
    d(b_j -> interior_i)``, ``clique[j1, j2] = d(b_j1 -> b_j2)``, all
    within this shard graph (virtual chain included — callers threshold
    at :data:`VIRTUAL_CUTOFF`).
    """
    out_block = np.full((interior, boundary), np.inf)
    in_block = np.full((interior, boundary), np.inf)
    clique = np.full((boundary, boundary), np.inf)
    directed = hasattr(shard_graph, "arcs")
    for j in range(boundary):
        source = interior + j
        if directed:
            forward = np.asarray(directed_dijkstra(shard_graph, source))
            backward = np.asarray(
                directed_dijkstra(shard_graph, source, reverse=True)
            )
        else:
            forward = np.asarray(dijkstra(shard_graph, source))
            backward = forward
        in_block[:, j] = forward[:interior]
        out_block[:, j] = backward[:interior]
        clique[j, :] = forward[interior : interior + boundary]
    return out_block, in_block, clique


def _closure(matrix: np.ndarray) -> np.ndarray:
    """Vectorised Floyd–Warshall min-plus closure (in place, returned)."""
    b = matrix.shape[0]
    for k in range(b):
        np.minimum(
            matrix, matrix[:, k, None] + matrix[None, k, :], out=matrix
        )
    return matrix


def _min_plus(rows: np.ndarray, db: np.ndarray, *, block: int = 128) -> np.ndarray:
    """``out[v, j] = min_i rows[v, i] + db[i, j]``, chunked over v."""
    n = rows.shape[0]
    out = np.empty_like(rows)
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        out[lo:hi] = np.min(
            rows[lo:hi, :, None] + db[None, :, :], axis=1
        )
    return out


def build_boundary(
    partition: Partition,
    shard_graphs: Sequence,
    overlay: Dict[Tuple[int, int], float],
    *,
    version: int = 0,
    cache: Optional[Dict[int, ShardRows]] = None,
    dirty: Optional[Sequence[int]] = None,
) -> Tuple[BoundaryTable, Dict[int, ShardRows]]:
    """Build the boundary table for one fleet epoch.

    ``overlay`` maps boundary–boundary edges (ordered pairs for
    directed graphs, canonical pairs otherwise) to their current
    weight.  When ``cache``/``dirty`` are given, only the dirty shards'
    row blocks are recomputed — the overlay minimum, the closure and
    the ``OUTD`` precompute always rerun, which is what makes a publish
    cost scale with the touched shards, not the fleet.

    Returns the table plus the (fresh) per-shard row cache for the next
    incremental rebuild.
    """
    b = len(partition.boundary)
    n = partition.n
    boundary = np.asarray(partition.boundary, dtype=np.int64)
    directed = bool(shard_graphs) and hasattr(shard_graphs[0], "arcs")

    rows: Dict[int, ShardRows] = {}
    dirty_set = set(range(len(shard_graphs))) if dirty is None else set(dirty)
    for k, shard_graph in enumerate(shard_graphs):
        if cache is not None and k not in dirty_set and k in cache:
            rows[k] = cache[k]
        else:
            rows[k] = shard_rows(
                shard_graph, len(partition.shard_vertices[k]), b
            )

    row_out = np.full((n, b), np.inf)
    row_in = np.full((n, b), np.inf)
    for k in range(len(shard_graphs)):
        members = np.asarray(partition.shard_vertices[k], dtype=np.int64)
        if members.size:
            out_block, in_block, _clique = rows[k]
            row_out[members] = out_block
            row_in[members] = in_block
    for j, vertex in enumerate(partition.boundary):
        row_out[vertex, j] = 0.0
        row_in[vertex, j] = 0.0

    db = np.full((b, b), np.inf)
    if b:
        np.fill_diagonal(db, 0.0)
        index = partition.boundary_index
        for (u, v), w in overlay.items():
            ju, jv = index[u], index[v]
            if w < db[ju, jv]:
                db[ju, jv] = w
            if not directed and w < db[jv, ju]:
                db[jv, ju] = w
        for k in range(len(shard_graphs)):
            np.minimum(db, rows[k][2], out=db)
        _closure(db)
        outd = _min_plus(row_out, db)
    else:
        outd = np.full((n, 0), np.inf)

    table = BoundaryTable(
        version=version,
        boundary=boundary,
        db=db,
        row_out=row_out,
        row_in=row_in,
        outd=outd,
    )
    return table, rows


def local_shard_graphs(graph, partition: Partition):
    """Coordinator-side copies of every shard graph (local ids)."""
    from repro.fleet.partition import build_shard_graph

    return [build_shard_graph(graph, partition, k) for k in range(partition.shards)]


def initial_overlay(graph, partition: Partition) -> Dict[Tuple[int, int], float]:
    """Extract the boundary–boundary edges of ``graph`` for the overlay."""
    overlay: Dict[Tuple[int, int], float] = {}
    if hasattr(graph, "arcs"):
        edges = graph.arcs()
    else:
        edges = graph.edges()
    for u, v, w in edges:
        if partition.is_boundary(u) and partition.is_boundary(v):
            overlay[(u, v)] = w
    return overlay
