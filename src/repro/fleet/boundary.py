"""Boundary-vertex distance table: the fleet's cross-shard glue.

Implements the query algebra from docs/sharding.md:

    d(s, t) = min over boundary b1, b2 of
              ROW_OUT[s, b1] + DB[b1, b2] + ROW_IN[b2, t]

where ``ROW_OUT[v, j]`` / ``ROW_IN[v, j]`` are the home-shard distances
``d_shard(v -> b_j)`` / ``d_shard(b_j -> v)`` (one Dijkstra per
boundary vertex per shard — two for directed graphs) and ``DB`` is the
all-pairs closure over the boundary: the element-wise minimum of the
direct boundary–boundary overlay edges and every shard's boundary
clique, closed with a vectorised Floyd–Warshall.  Boundary vertices
carry unit rows (0 at their own index, ∞ elsewhere) so ``DB`` is never
double-counted.

Two numerical conventions make this exact rather than approximate:

* the virtual connectivity chain (:data:`repro.fleet.partition.VIRTUAL_WEIGHT`)
  pollutes only sums ``>= 2**49``, which :func:`BoundaryTable.combo_many`
  maps back to ∞ — every real distance is far below the cutoff and
  float64 keeps all sums in play exactly integral;
* ``OUTD = ROW_OUT ⊗ DB`` is precomputed once per fleet epoch, so a
  query is a single length-``|B|`` min-plus reduction
  (``(OUTD[s] + ROW_IN[t]).min()``) and a batch is one vectorised
  ``np.min`` over an ``(m, |B|)`` array.

Incremental refresh (docs/sharding.md § Incremental boundary refresh)
---------------------------------------------------------------------
:func:`build_boundary` is the full-rebuild reference.  The serving hot
path uses :func:`refresh_boundary` instead, which makes every stage of
the rebuild AFF-scoped so a publish costs what the *update* touched,
not what the *fleet* holds:

1. **Rows** — a dirty shard's per-boundary Dijkstra sweeps shrink to
   the boundary columns and interior rows named by the shard oracle's
   own ``V_aff`` (:func:`plan_row_refresh` / :func:`scoped_row_patch`
   / :func:`apply_row_patch`), sound because an entry ``d(x, b_j)``
   can only change when ``x`` or ``b_j`` is in ``V_aff``.
2. **Closure** — the ``DB`` min-plus closure is re-derived from the
   previous closed matrix: decreases are folded in with Floyd–Warshall
   pivots restricted to the endpoints of changed base cells; increases
   re-close exactly the source rows whose old shortest boundary paths
   ran through an increased cell (dense Dijkstra over the new base).
3. **OUTD** — ``ROW_OUT ⊗ DB`` is patched per changed row / changed
   ``DB`` column with a vectorised candidate mask instead of the full
   blocked min-plus.

Each stage falls back to its full counterpart when the change set is
so large that the scoped path would not be cheaper
(:class:`RefreshStats` records rows refreshed, closure cells relaxed
and every fallback, which the coordinator surfaces as
``repro_fleet_boundary_*`` metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dijkstra import dijkstra
from repro.directed.dijkstra import directed_dijkstra
from repro.fleet.partition import VIRTUAL_WEIGHT, Partition, shard_local_ids

try:  # C-speed batched SSSP when the host happens to ship scipy
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover - pure-python fallback below
    _csr_matrix = None
    _csgraph_dijkstra = None

#: Any assembled distance at or above this is virtual-chain pollution
#: (or genuine unreachability) and reads back as infinity.
VIRTUAL_CUTOFF: float = VIRTUAL_WEIGHT

#: Per-shard row bundle: (out_block, in_block, clique) where the blocks
#: cover the shard's interior vertices and clique is |B| x |B|.
ShardRows = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class BoundaryTable:
    """Immutable cross-shard distance table for one fleet epoch.

    ``boundary`` lists the global ids in boundary-index order; ``db``,
    ``row_out``, ``row_in`` and ``outd`` are as described in the module
    docstring.  Instances are shared by reference inside
    :class:`repro.fleet.coordinator.FleetSnapshot` — readers pinned on
    an old snapshot keep the old table untouched while a publish swaps
    in a new one.
    """

    version: int
    boundary: np.ndarray
    db: np.ndarray
    row_out: np.ndarray
    row_in: np.ndarray
    outd: np.ndarray

    @property
    def size(self) -> int:
        """Number of boundary vertices."""
        return int(self.boundary.shape[0])

    def combo(self, s: int, t: int) -> float:
        """Best boundary-routed distance ``s -> t`` (∞ if none)."""
        if self.size == 0:
            return float("inf")
        value = float(np.min(self.outd[s] + self.row_in[t]))
        return float("inf") if value >= VIRTUAL_CUTOFF else value

    def combo_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """Vectorised :meth:`combo` over aligned source/target arrays."""
        m = len(sources)
        if self.size == 0:
            return np.full(m, np.inf)
        values = np.min(
            self.outd[np.asarray(sources)] + self.row_in[np.asarray(targets)],
            axis=1,
        )
        values[values >= VIRTUAL_CUTOFF] = np.inf
        return values


def _shard_csr(shard_graph):
    """Shard adjacency as a CSR matrix, arcs explicit in both senses."""
    n = shard_graph.n
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    if hasattr(shard_graph, "arcs"):
        for u, v, w in shard_graph.arcs():
            rows.append(u)
            cols.append(v)
            vals.append(w)
    else:
        for u, v, w in shard_graph.edges():
            rows.append(u)
            cols.append(v)
            vals.append(w)
            rows.append(v)
            cols.append(u)
            vals.append(w)
    return _csr_matrix((vals, (rows, cols)), shape=(n, n))


class ShardCSR:
    """Weight-patchable CSR mirror of one shard graph.

    Fleet updates are weight rewrites, never edge insertions, so the
    sparsity pattern is frozen at build time: the ``(u, v) -> data
    slot`` map is computed once and :meth:`set_weight` patches
    ``matrix.data`` in place — no per-publish adjacency rebuild.  When
    scipy is absent ``matrix`` is ``None`` and sweeps fall back to the
    pure-python per-source Dijkstra.
    """

    __slots__ = ("matrix", "_slots", "_directed")

    def __init__(self, shard_graph):
        self._directed = hasattr(shard_graph, "arcs")
        if _csr_matrix is None:
            self.matrix = None
            self._slots = None
            return
        self.matrix = _shard_csr(shard_graph)
        indptr = self.matrix.indptr
        indices = self.matrix.indices
        slots: Dict[Tuple[int, int], int] = {}
        for u in range(self.matrix.shape[0]):
            for slot in range(int(indptr[u]), int(indptr[u + 1])):
                slots[(u, int(indices[slot]))] = slot
        self._slots = slots

    def set_weight(self, u: int, v: int, weight: float) -> None:
        if self.matrix is None:
            return
        self.matrix.data[self._slots[(u, v)]] = weight
        if not self._directed:
            self.matrix.data[self._slots[(v, u)]] = weight


def batched_sssp(
    shard_graph,
    sources: Sequence[int],
    *,
    reverse: bool = False,
    csr=None,
) -> np.ndarray:
    """``(len(sources), n)`` distances from each source to every vertex.

    Uses scipy's C Dijkstra when the host ships scipy (pass ``csr``
    from :func:`_shard_csr` to amortise the adjacency build across
    forward/backward calls); otherwise falls back to one pure-python
    heap Dijkstra per source.  Exactness either way: every real path
    sum of integral weights is exact in float64 regardless of
    relaxation order, and virtual-chain pollution — where orders *can*
    round differently — sits at or above :data:`VIRTUAL_CUTOFF` and
    reads back as infinity.
    """
    directed = hasattr(shard_graph, "arcs")
    if _csgraph_dijkstra is not None:
        if csr is None:
            csr = _shard_csr(shard_graph)
        matrix = csr.T.tocsr() if (reverse and directed) else csr
        if not len(sources):
            return np.empty((0, shard_graph.n))
        return np.asarray(
            _csgraph_dijkstra(matrix, directed=True, indices=list(sources))
        )
    out = np.empty((len(sources), shard_graph.n))
    for idx, source in enumerate(sources):
        if directed:
            out[idx] = directed_dijkstra(shard_graph, source, reverse=reverse)
        else:
            out[idx] = dijkstra(shard_graph, source)
    return out


def shard_rows(
    shard_graph, interior: int, boundary: int, *, csr=None
) -> ShardRows:
    """Dijkstra row blocks for one shard graph (local vertex ids).

    Runs one SSSP per boundary vertex (two per vertex when the shard
    graph is directed) and returns ``(out_block, in_block, clique)``:
    ``out_block[i, j] = d(interior_i -> b_j)``, ``in_block[i, j] =
    d(b_j -> interior_i)``, ``clique[j1, j2] = d(b_j1 -> b_j2)``, all
    within this shard graph (virtual chain included — callers threshold
    at :data:`VIRTUAL_CUTOFF`).
    """
    directed = hasattr(shard_graph, "arcs")
    sources = list(range(interior, interior + boundary))
    if csr is None and _csgraph_dijkstra is not None:
        csr = _shard_csr(shard_graph)
    forward = batched_sssp(shard_graph, sources, csr=csr)
    backward = (
        batched_sssp(shard_graph, sources, reverse=True, csr=csr)
        if directed
        else forward
    )
    in_block = forward[:, :interior].T.copy()
    out_block = backward[:, :interior].T.copy()
    clique = forward[:, interior : interior + boundary].copy()
    return out_block, in_block, clique


def _closure(matrix: np.ndarray, *, count: Optional[List[int]] = None) -> np.ndarray:
    """Vectorised Floyd–Warshall min-plus closure (in place, returned).

    Pivot rows that are all-∞ cannot relax anything and are skipped.
    ``count`` (a single-element list) accumulates relaxed cell visits.
    """
    b = matrix.shape[0]
    scratch = np.empty_like(matrix)
    for k in range(b):
        row = matrix[k]
        if not np.isfinite(row).any():
            continue
        np.add(matrix[:, k, None], row[None, :], out=scratch)
        np.minimum(matrix, scratch, out=matrix)
        if count is not None:
            count[0] += b * b
    return matrix


def _min_plus(rows: np.ndarray, db: np.ndarray, *, block: int = 128) -> np.ndarray:
    """``out[v, j] = min_i rows[v, i] + db[i, j]``, chunked over v.

    A single ``(block, b, b)`` scratch buffer is reused across chunks
    instead of materialising a fresh broadcast temp per chunk.
    """
    n, b = rows.shape
    out = np.empty_like(rows)
    if b == 0 or n == 0:
        return out
    scratch = np.empty((min(block, n), b, b))
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        view = scratch[: hi - lo]
        np.add(rows[lo:hi, :, None], db[None, :, :], out=view)
        np.min(view, axis=1, out=out[lo:hi])
    return out


def build_boundary(
    partition: Partition,
    shard_graphs: Sequence,
    overlay: Dict[Tuple[int, int], float],
    *,
    version: int = 0,
    cache: Optional[Dict[int, ShardRows]] = None,
    dirty: Optional[Sequence[int]] = None,
) -> Tuple[BoundaryTable, Dict[int, ShardRows]]:
    """Build the boundary table for one fleet epoch.

    ``overlay`` maps boundary–boundary edges (ordered pairs for
    directed graphs, canonical pairs otherwise) to their current
    weight.  When ``cache``/``dirty`` are given, only the dirty shards'
    row blocks are recomputed — the overlay minimum, the closure and
    the ``OUTD`` precompute always rerun, which is what makes a publish
    cost scale with the touched shards, not the fleet.

    Returns the table plus the (fresh) per-shard row cache for the next
    incremental rebuild.
    """
    b = len(partition.boundary)
    n = partition.n
    boundary = np.asarray(partition.boundary, dtype=np.int64)
    directed = bool(shard_graphs) and hasattr(shard_graphs[0], "arcs")

    rows: Dict[int, ShardRows] = {}
    dirty_set = set(range(len(shard_graphs))) if dirty is None else set(dirty)
    for k, shard_graph in enumerate(shard_graphs):
        if cache is not None and k not in dirty_set and k in cache:
            rows[k] = cache[k]
        else:
            rows[k] = shard_rows(
                shard_graph, len(partition.shard_vertices[k]), b
            )

    row_out = np.full((n, b), np.inf)
    row_in = np.full((n, b), np.inf)
    for k in range(len(shard_graphs)):
        members = np.asarray(partition.shard_vertices[k], dtype=np.int64)
        if members.size:
            out_block, in_block, _clique = rows[k]
            row_out[members] = out_block
            row_in[members] = in_block
    for j, vertex in enumerate(partition.boundary):
        row_out[vertex, j] = 0.0
        row_in[vertex, j] = 0.0

    base = _assemble_base(partition, rows, overlay, directed)
    if b:
        db = _closure(base.copy())
        outd = _min_plus(row_out, db)
    else:
        db = base
        outd = np.full((n, 0), np.inf)

    table = BoundaryTable(
        version=version,
        boundary=boundary,
        db=db,
        row_out=row_out,
        row_in=row_in,
        outd=outd,
    )
    return table, rows


def _assemble_base(
    partition: Partition,
    rows: Mapping[int, ShardRows],
    overlay: Mapping[Tuple[int, int], float],
    directed: bool,
) -> np.ndarray:
    """Pre-closure base matrix: min(diag 0, overlay, per-shard cliques)."""
    b = len(partition.boundary)
    base = np.full((b, b), np.inf)
    if not b:
        return base
    np.fill_diagonal(base, 0.0)
    index = partition.boundary_index
    for (u, v), w in overlay.items():
        ju, jv = index[u], index[v]
        if w < base[ju, jv]:
            base[ju, jv] = w
        if not directed and w < base[jv, ju]:
            base[jv, ju] = w
    for k in sorted(rows):
        np.minimum(base, rows[k][2], out=base)
    return base


@dataclass
class RefreshStats:
    """Work accounting for one incremental boundary refresh.

    ``rows_refreshed`` counts SSSP sources rerun inside dirty shards;
    ``row_touches`` the vertex settles those sweeps cost;
    ``closure_cells`` / ``outd_cells`` the matrix cells relaxed or
    recomputed in the closure and OUTD stages.  ``aff_norm`` is the
    publish's ‖AFF‖ currency (shard-local affected sets plus overlay
    writes), ``diff_cells`` the |DIFF| analogue (boundary-table entries
    that actually changed).  ``fallbacks`` names every stage that
    reverted to its full counterpart; ``full_rebuild`` marks a publish
    that bypassed the incremental path entirely.
    """

    rows_refreshed: int = 0
    row_touches: int = 0
    closure_cells: int = 0
    outd_cells: int = 0
    diff_cells: int = 0
    aff_norm: int = 0
    fallbacks: List[str] = field(default_factory=list)
    full_rebuild: bool = False

    @property
    def ops_total(self) -> int:
        """Total refresh work in the shared cell/settle currency."""
        return self.row_touches + self.closure_cells + self.outd_cells


@dataclass
class BoundaryState:
    """Carry-over between publishes for :func:`refresh_boundary`.

    ``base`` is the *pre-closure* boundary matrix the current ``db``
    closes; diffing a freshly assembled base against it yields the
    exact changed-cell set that seeds the incremental closure.  The
    previous ``table`` is never mutated — refresh copies-on-write, so
    readers pinned on old fleet epochs keep their arrays.
    """

    rows: Dict[int, ShardRows]
    base: np.ndarray
    table: BoundaryTable
    directed: bool


def build_boundary_state(
    partition: Partition,
    shard_graphs: Sequence,
    overlay: Dict[Tuple[int, int], float],
    *,
    version: int = 0,
    cache: Optional[Dict[int, ShardRows]] = None,
    dirty: Optional[Sequence[int]] = None,
) -> Tuple[BoundaryTable, BoundaryState]:
    """Full rebuild that also captures the incremental carry-over state."""
    table, rows = build_boundary(
        partition, shard_graphs, overlay, version=version, cache=cache, dirty=dirty
    )
    directed = bool(shard_graphs) and hasattr(shard_graphs[0], "arcs")
    base = _assemble_base(partition, rows, overlay, directed)
    return table, BoundaryState(
        rows=rows, base=base, table=table, directed=directed
    )


def plan_row_refresh(
    interior: int, boundary: int, aff: Optional[FrozenSet[int]]
) -> Optional[Tuple[List[int], List[int]]]:
    """AFF-scoped row-refresh plan for one dirty shard.

    Returns ``(dirty_cols, aff_rows)`` — the boundary columns and
    interior rows whose SSSPs must rerun — or ``None`` when the shard's
    affected set is unknown or the scoped sweep would not beat the full
    ``boundary``-source sweep.  Soundness: a block entry ``d(x, b_j)``
    can only change when ``x ∈ AFF`` or ``b_j ∈ AFF`` (the shard
    oracle's own V_aff guarantee), so recomputing the affected columns
    *and* the affected interior rows covers every mutable entry.
    """
    if aff is None:
        return None
    dirty_cols = sorted(j for j in range(boundary) if interior + j in aff)
    aff_rows = sorted(x for x in aff if 0 <= x < interior)
    if len(dirty_cols) + len(aff_rows) >= boundary:
        return None
    return dirty_cols, aff_rows


def scoped_row_patch(
    shard_graph,
    interior: int,
    boundary: int,
    plan: Optional[Tuple[Sequence[int], Sequence[int]]],
    *,
    csr=None,
) -> Dict[str, object]:
    """Compute the Dijkstra patch for one shard (worker- or local-side).

    With ``plan=None`` the patch carries full :func:`shard_rows`
    blocks; otherwise only the planned columns/rows are swept.  Pass a
    :class:`ShardCSR` matrix via ``csr`` to skip the adjacency build.
    The patch is pure data (lists + arrays) so it can cross the process
    boundary — :func:`apply_row_patch` folds it into the cached blocks.
    """
    directed = hasattr(shard_graph, "arcs")
    size = interior + boundary
    per_sweep = size * (2 if directed else 1)
    if csr is None and _csgraph_dijkstra is not None:
        csr = _shard_csr(shard_graph)
    if plan is None:
        full = shard_rows(shard_graph, interior, boundary, csr=csr)
        return {
            "full": full,
            "touches": per_sweep * boundary,
            "sources": boundary,
        }
    dirty_cols, aff_rows = list(plan[0]), list(plan[1])
    c, r = len(dirty_cols), len(aff_rows)
    sources = [interior + j for j in dirty_cols] + aff_rows
    forward = batched_sssp(shard_graph, sources, csr=csr)
    backward = (
        batched_sssp(shard_graph, sources, reverse=True, csr=csr)
        if directed
        else forward
    )
    col_in = forward[:c, :interior].T.copy()
    col_out = backward[:c, :interior].T.copy()
    clique_row = forward[:c, interior:size].copy()
    clique_col = backward[:c, interior:size].T.copy()
    row_out_p = forward[c:, interior:size].copy()
    row_in_p = backward[c:, interior:size].copy()
    return {
        "cols": dirty_cols,
        "col_in": col_in,
        "col_out": col_out,
        "clique_row": clique_row,
        "clique_col": clique_col,
        "rows": aff_rows,
        "row_out": row_out_p,
        "row_in": row_in_p,
        "touches": per_sweep * (c + r),
        "sources": c + r,
    }


def apply_row_patch(
    cached: ShardRows, patch: Dict[str, object]
) -> ShardRows:
    """Fold a :func:`scoped_row_patch` into cached blocks (copy-on-write)."""
    if "full" in patch:
        return patch["full"]  # type: ignore[return-value]
    out_block, in_block, clique = cached
    out_block = out_block.copy()
    in_block = in_block.copy()
    clique = clique.copy()
    cols = patch["cols"]
    if cols:
        out_block[:, cols] = patch["col_out"]
        in_block[:, cols] = patch["col_in"]
        clique[cols, :] = patch["clique_row"]
        clique[:, cols] = patch["clique_col"]
    rows = patch["rows"]
    if rows:
        out_block[rows, :] = patch["row_out"]
        in_block[rows, :] = patch["row_in"]
    return out_block, in_block, clique


def _dense_dijkstra_row(base: np.ndarray, source: int) -> np.ndarray:
    """Exact single-source distances over the dense base matrix."""
    b = base.shape[0]
    dist = base[source].copy()
    done = np.zeros(b, dtype=bool)
    for _ in range(b):
        masked = np.where(done, np.inf, dist)
        u = int(np.argmin(masked))
        if not np.isfinite(masked[u]):
            break
        done[u] = True
        np.minimum(dist, dist[u] + base[u], out=dist)
    return dist


def _refresh_closure(
    base_old: np.ndarray,
    base_new: np.ndarray,
    db_old: np.ndarray,
    stats: RefreshStats,
) -> np.ndarray:
    """Delta-seeded min-plus closure of ``base_new``.

    ``db_old`` must be the exact closure of ``base_old``.  Increases
    are handled first: a source row is dirty iff some old shortest
    boundary path from it ran through an increased cell (equality test
    against the old closure), and each dirty row is re-derived by dense
    Dijkstra over ``base_new``.  Decreases are then folded in with
    Floyd–Warshall pivots restricted to the endpoints of decreased
    cells.  Falls back to the full closure when the changed-cell set is
    too large to be cheaper.  Returns ``db_old`` itself (shared, not
    copied) when no base cell changed.
    """
    b = base_old.shape[0]
    changed = base_new != base_old
    if not changed.any():
        return db_old
    stats.diff_cells += int(np.count_nonzero(changed))
    inc_idx = np.argwhere(base_new > base_old)
    dec_idx = np.argwhere(base_new < base_old)
    pivots = (
        np.unique(dec_idx) if dec_idx.size else np.empty(0, dtype=np.int64)
    )
    if inc_idx.shape[0] + pivots.size >= b:
        stats.fallbacks.append("closure")
        count = [0]
        db = _closure(base_new.copy(), count=count)
        stats.closure_cells += count[0]
        return db
    db = db_old.copy()
    if inc_idx.size:
        finite = np.isfinite(db_old)
        dirty = np.zeros(b, dtype=bool)
        for u, v in inc_idx:
            contrib = db_old[:, u, None] + (base_old[u, v] + db_old[None, v, :])
            dirty |= ((contrib == db_old) & finite).any(axis=1)
            stats.closure_cells += b * b
        for i in np.flatnonzero(dirty):
            db[i, :] = _dense_dijkstra_row(base_new, int(i))
            stats.closure_cells += b * b
    if dec_idx.size:
        rs, cs = dec_idx[:, 0], dec_idx[:, 1]
        np.minimum.at(db, (rs, cs), base_new[rs, cs])
        scratch = np.empty_like(db)
        for k in pivots:
            np.add(db[:, k, None], db[None, k, :], out=scratch)
            np.minimum(db, scratch, out=db)
            stats.closure_cells += b * b
    return db


def _refresh_outd(
    row_out: np.ndarray,
    changed_rows: Sequence[int],
    db_old: np.ndarray,
    db_new: np.ndarray,
    outd_old: np.ndarray,
    stats: RefreshStats,
) -> np.ndarray:
    """Masked refresh of ``OUTD = ROW_OUT ⊗ DB``.

    Rows whose ``row_out`` changed are recomputed in full.  For the
    rest, each changed ``DB`` column is patched in place: decreased
    cells contribute a vectorised candidate minimum over just those
    cells; increased cells force a full recompute only for the rows
    whose old minimum was supported by an increased cell (exact
    equality test — integral float64 sums make it reliable).  Returns
    ``outd_old`` itself (shared) when nothing changed.
    """
    n, b = row_out.shape
    if b == 0:
        return outd_old
    R = np.asarray(sorted(set(int(v) for v in changed_rows)), dtype=np.int64)
    if db_new is db_old:
        J = np.empty(0, dtype=np.int64)
        changed_cells = 0
    else:
        cell_changed = db_new != db_old
        J = np.flatnonzero(cell_changed.any(axis=0))
        changed_cells = int(np.count_nonzero(cell_changed))
        stats.diff_cells += changed_cells
    if R.size == 0 and J.size == 0:
        return outd_old
    if R.size >= n // 2 or changed_cells >= (b * b) // 2:
        stats.fallbacks.append("outd")
        stats.outd_cells += n * b
        return _min_plus(row_out, db_new)
    outd = outd_old.copy()
    if R.size:
        outd[R] = _min_plus(row_out[R], db_new)
        stats.outd_cells += int(R.size) * b
    if J.size:
        keep = np.ones(n, dtype=bool)
        keep[R] = False
        rest = np.flatnonzero(keep)
        ro = row_out[rest]
        for j in J:
            old_col = db_old[:, j]
            new_col = db_new[:, j]
            inc = np.flatnonzero(new_col > old_col)
            dec = np.flatnonzero(new_col < old_col)
            cur = outd[rest, j]
            if inc.size:
                support = (
                    ro[:, inc] + old_col[None, inc] == cur[:, None]
                ).any(axis=1)
                hits = np.flatnonzero(support)
                if hits.size:
                    cur[hits] = np.min(ro[hits] + new_col[None, :], axis=1)
                    stats.outd_cells += int(hits.size) * b
            if dec.size:
                cand = np.min(ro[:, dec] + new_col[None, dec], axis=1)
                np.minimum(cur, cand, out=cur)
                stats.outd_cells += int(rest.size) * int(dec.size)
            outd[rest, j] = cur
    return outd


def refresh_boundary(
    partition: Partition,
    overlay: Dict[Tuple[int, int], float],
    state: BoundaryState,
    new_rows: Mapping[int, ShardRows],
    *,
    version: int,
    stats: Optional[RefreshStats] = None,
) -> Tuple[BoundaryTable, BoundaryState, RefreshStats]:
    """Incremental boundary refresh from carried state plus fresh rows.

    ``new_rows`` maps each dirty shard to its refreshed row bundle
    (from :func:`apply_row_patch`); untouched shards reuse their cached
    bundles from ``state``.  The previous table's arrays are never
    mutated — every changed array is rebuilt copy-on-write, and
    unchanged stages hand back the old arrays by reference.
    """
    stats = stats if stats is not None else RefreshStats()
    b = len(partition.boundary)
    old = state.table
    rows = dict(state.rows)
    row_out = old.row_out
    row_in = old.row_in
    changed_rows: List[int] = []
    rows_copied = False
    for k, bundle in new_rows.items():
        old_bundle = rows[k]
        rows[k] = bundle
        members = np.asarray(partition.shard_vertices[k], dtype=np.int64)
        if members.size == 0:
            continue
        out_new, in_new, _ = bundle
        out_old, in_old, _ = old_bundle
        out_diff = np.any(out_new != out_old, axis=1)
        in_diff = np.any(in_new != in_old, axis=1)
        touched = np.flatnonzero(out_diff | in_diff)
        if touched.size == 0:
            continue
        if not rows_copied:
            row_out = row_out.copy()
            row_in = row_in.copy()
            rows_copied = True
        sel = members[touched]
        row_out[sel] = out_new[touched]
        row_in[sel] = in_new[touched]
        changed_rows.extend(int(v) for v in members[np.flatnonzero(out_diff)])
        stats.diff_cells += int(np.count_nonzero(out_new != out_old))
        stats.diff_cells += int(np.count_nonzero(in_new != in_old))
    base_new = _assemble_base(partition, rows, overlay, state.directed)
    if b:
        db = _refresh_closure(state.base, base_new, old.db, stats)
        outd = _refresh_outd(
            row_out, changed_rows, old.db, db, old.outd, stats
        )
    else:
        db = base_new
        outd = old.outd
    table = BoundaryTable(
        version=version,
        boundary=old.boundary,
        db=db,
        row_out=row_out,
        row_in=row_in,
        outd=outd,
    )
    new_state = BoundaryState(
        rows=rows, base=base_new, table=table, directed=state.directed
    )
    return table, new_state, stats


def refresh_boundary_local(
    partition: Partition,
    shard_graphs: Sequence,
    overlay: Dict[Tuple[int, int], float],
    state: BoundaryState,
    shard_aff: Mapping[int, Optional[FrozenSet[int]]],
    *,
    version: int,
) -> Tuple[BoundaryTable, BoundaryState, RefreshStats]:
    """Plan, sweep and refresh in one call (in-process shards / tests).

    ``shard_aff`` maps every dirty shard to its local affected-vertex
    set (``None`` = unknown, forcing a full row sweep for that shard).
    """
    stats = RefreshStats()
    b = len(partition.boundary)
    new_rows: Dict[int, ShardRows] = {}
    for k, aff in sorted(shard_aff.items()):
        interior = len(partition.shard_vertices[k])
        plan = plan_row_refresh(interior, b, aff)
        if plan is None:
            stats.fallbacks.append("rows")
            stats.aff_norm += interior + b
        else:
            stats.aff_norm += len(aff)
        patch = scoped_row_patch(shard_graphs[k], interior, b, plan)
        stats.rows_refreshed += int(patch["sources"])
        stats.row_touches += int(patch["touches"])
        new_rows[k] = apply_row_patch(state.rows[k], patch)
    return refresh_boundary(
        partition, overlay, state, new_rows, version=version, stats=stats
    )


def local_shard_graphs(graph, partition: Partition):
    """Coordinator-side copies of every shard graph (local ids)."""
    from repro.fleet.partition import build_shard_graph

    return [build_shard_graph(graph, partition, k) for k in range(partition.shards)]


def initial_overlay(graph, partition: Partition) -> Dict[Tuple[int, int], float]:
    """Extract the boundary–boundary edges of ``graph`` for the overlay."""
    overlay: Dict[Tuple[int, int], float] = {}
    if hasattr(graph, "arcs"):
        edges = graph.arcs()
    else:
        edges = graph.edges()
    for u, v, w in edges:
        if partition.is_boundary(u) and partition.is_boundary(v):
            overlay[(u, v)] = w
    return overlay
