"""The :class:`FleetCoordinator`: routing, algebra, two-phase publish.

One coordinator fronts ``N`` shard servers (in-process
:class:`~repro.fleet.shard.ShardServer` by default, one worker process
each with ``processes=True``) and owns everything cross-shard: the
vertex → shard routing map, the boundary-edge overlay, the
:class:`~repro.fleet.boundary.BoundaryTable`, and the fleet epoch.

**Read path.**  ``distance(s, t)`` routes by two array lookups.  A
same-shard interior pair is answered as ``min(shard answer, boundary
combo)`` — the min is required for exactness because the true shortest
path may detour through another shard or over a direct boundary edge
that shard graphs exclude; every other pair is the boundary combo
alone (docs/sharding.md gives the decomposition argument).
``query_many`` answers the combo for the whole batch as one vectorised
min-plus and only touches shard servers for the same-shard minority.

**Write path: the two-phase swap** (the invariant
``tests/test_fleet_epochs.py`` audits).  ``apply`` fans the batch out
with :func:`repro.fleet.partition.split_updates` and then:

1. *prepare* — every touched shard applies its sub-batch and publishes
   a new shard epoch **internally**; the overlay absorbs
   boundary–boundary changes; the boundary table is rebuilt against
   the prepared state (row blocks recomputed only for touched shards).
   Nothing is visible to fleet readers yet: they read shards solely
   through the pinned epoch snapshots inside their
   :class:`FleetSnapshot`, and retired snapshots stay queryable.
2. *commit* — one atomic reference swap installs a new
   :class:`FleetSnapshot` carrying the new shard-snapshot vector and
   boundary table.  A reader therefore sees either the complete old
   fleet epoch or the complete new one, never a mix.

Writers are serialized by a lock; readers never block.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.fleet.boundary import (
    VIRTUAL_CUTOFF,
    BoundaryState,
    BoundaryTable,
    RefreshStats,
    ShardCSR,
    ShardRows,
    apply_row_patch,
    build_boundary_state,
    initial_overlay,
    plan_row_refresh,
    refresh_boundary,
    scoped_row_patch,
)
from repro.fleet.partition import (
    BOUNDARY_SHARD,
    Partition,
    build_shard_graph,
    separator_partition,
    shard_local_ids,
    split_updates,
)
from repro.fleet.shard import ShardServer
from repro.obs import names
from repro.reliability import OracleState
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import span


@dataclass(frozen=True)
class FleetSnapshot:
    """One immutable fleet epoch: what a pinned reader sees.

    ``shard_tokens[k]`` is shard ``k``'s read token (a pinned
    :class:`~repro.serve.epoch.EpochSnapshot` in process, the epoch
    number over RPC), ``shard_epochs`` the matching epoch vector, and
    ``boundary`` the cross-shard table built against exactly those
    shard epochs.  All three are installed by a single reference swap,
    which is the whole of the mixed-epoch-freedom argument.
    """

    fleet_epoch: int
    shard_tokens: Tuple[object, ...]
    shard_epochs: Tuple[int, ...]
    boundary: BoundaryTable


@dataclass(frozen=True)
class FleetReport:
    """What one :meth:`FleetCoordinator.apply` publish did."""

    fleet_epoch: int  #: the newly committed fleet epoch
    touched_shards: Tuple[int, ...]  #: shards that prepared a new epoch
    overlay_updates: int  #: boundary-boundary edges rewritten
    boundary_rebuilt: bool  #: whether the boundary table was refreshed
    prepare_s: float  #: wall time of the prepare phase
    commit_s: float  #: wall time of the commit swap
    total_s: float  #: wall time of the whole publish
    shard_reports: Dict[int, object] = field(default_factory=dict, repr=False)
    #: Wall time of the boundary refresh inside prepare (0.0 if skipped).
    boundary_s: float = 0.0
    #: Work accounting of the incremental refresh (None when the publish
    #: skipped the boundary or ran the full non-incremental rebuild).
    boundary_stats: Optional[RefreshStats] = field(default=None, repr=False)


class FleetCoordinator:
    """A sharded distance-serving fleet behind one façade.

    Parameters mirror :class:`~repro.serve.server.DistanceServer` where
    they overlap; ``shards`` requests the partition width (the
    effective width may be smaller on path-like graphs — see
    :func:`~repro.fleet.partition.separator_partition`), ``processes``
    moves each shard server into its own spawned worker process.
    Shard servers share this coordinator's metrics registry, so one
    scrape carries ``repro_serve_*`` and ``repro_fleet_*`` together.
    """

    def __init__(
        self,
        graph,
        *,
        shards: int = 4,
        oracle: str = "h2h",
        backend: Optional[str] = None,
        cache_capacity: int = 65536,
        workers: int = 1,
        registry: Optional[MetricsRegistry] = None,
        processes: bool = False,
        cut_depth: int = 0,
        incremental: bool = True,
    ) -> None:
        self.partition: Partition = separator_partition(
            graph, shards, cut_depth=cut_depth
        )
        self.processes = bool(processes)
        #: AFF-scoped incremental boundary refresh on publish (the full
        #: rebuild stays available as the bit-identical reference path).
        self.incremental = bool(incremental)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._register_metrics()

        # Coordinator-local shard graph copies: the source of truth for
        # boundary-row Dijkstras (shard oracles copy-on-write their own
        # graphs, so these are updated in lockstep during prepare).
        self._local_graphs = [
            build_shard_graph(graph, self.partition, k)
            for k in range(self.partition.shards)
        ]
        self._to_local = [
            shard_local_ids(self.partition, k)[0]
            for k in range(self.partition.shards)
        ]
        # Weight-patchable CSR mirrors: scoped row sweeps reuse the
        # frozen sparsity pattern instead of rebuilding the adjacency
        # per publish (no-op containers when scipy is absent).
        self._shard_csrs = [ShardCSR(g) for g in self._local_graphs]
        self._overlay = initial_overlay(graph, self.partition)
        self._directed = hasattr(graph, "arcs")

        if self.processes:
            from repro.fleet.proc import ShardProcessHandle

            self._shards: List[object] = [
                ShardProcessHandle(
                    graph,
                    self.partition,
                    k,
                    oracle=oracle,
                    backend=backend,
                    cache_capacity=cache_capacity,
                )
                for k in range(self.partition.shards)
            ]
        else:
            self._shards = [
                ShardServer(
                    graph,
                    self.partition,
                    k,
                    oracle=oracle,
                    backend=backend,
                    cache_capacity=cache_capacity,
                    workers=workers,
                    registry=self.metrics,
                )
                for k in range(self.partition.shards)
            ]

        table, self._boundary_state = build_boundary_state(
            self.partition, self._local_graphs, self._overlay, version=0
        )
        pins = [shard.pin() for shard in self._shards]
        self._current = FleetSnapshot(
            fleet_epoch=0,
            shard_tokens=tuple(token for token, _epoch in pins),
            shard_epochs=tuple(epoch for _token, epoch in pins),
            boundary=table,
        )
        self._write_lock = threading.Lock()
        self._m_epoch.set(0)
        self._m_shards.set(self.partition.shards)
        self._m_boundary.set(len(self.partition.boundary))

    def _register_metrics(self) -> None:
        m = self.metrics
        self._m_queries = m.counter(
            names.FLEET_QUERIES,
            "Fleet queries answered, by route (local/cross/boundary).",
            ("route",),
        )
        self._m_latency = m.histogram(
            names.FLEET_QUERY_LATENCY,
            "Per-call fleet query wall time in seconds (a query_many "
            "batch counts as one observation).",
        )
        self._m_publishes = m.counter(
            names.FLEET_PUBLISHES, "Fleet epochs committed."
        )
        self._m_publish_duration = m.histogram(
            names.FLEET_PUBLISH_DURATION,
            "Wall time of one two-phase fleet publish, in seconds.",
        )
        self._m_epoch = m.gauge(names.FLEET_EPOCH, "Current fleet epoch.")
        self._m_shards = m.gauge(
            names.FLEET_SHARDS, "Effective shard count of the partition."
        )
        self._m_boundary = m.gauge(
            names.FLEET_BOUNDARY_VERTICES,
            "Vertices in the shared separator boundary set.",
        )
        self._m_rebuild = m.histogram(
            names.FLEET_BOUNDARY_REBUILD,
            "Wall time of one boundary-table rebuild, in seconds.",
        )
        self._m_shard_updates = m.counter(
            names.FLEET_SHARD_UPDATES,
            "Edge updates fanned out, by destination shard "
            "('overlay' for boundary-boundary edges).",
            ("shard",),
        )
        self._m_boundary_rows = m.counter(
            names.FLEET_BOUNDARY_ROWS_REFRESHED,
            "Dijkstra row sources rerun by incremental boundary "
            "refreshes (full sweeps count every boundary column).",
        )
        self._m_boundary_cells = m.counter(
            names.FLEET_BOUNDARY_CLOSURE_CELLS,
            "DB-closure cells relaxed by incremental boundary refreshes.",
        )
        self._m_boundary_full = m.counter(
            names.FLEET_BOUNDARY_FULL_REBUILDS,
            "Refresh stages that reverted to their full counterpart, "
            "by stage (rows/closure/outd/disabled).",
            ("stage",),
        )

    # -- routing -------------------------------------------------------
    @property
    def shards(self) -> int:
        return self.partition.shards

    @property
    def fleet_epoch(self) -> int:
        return self._current.fleet_epoch

    def route(self, vertex: int) -> int:
        """Owning shard of ``vertex`` (-1 for boundary vertices)."""
        if not 0 <= vertex < self.partition.n:
            raise QueryError(
                f"vertex {vertex} out of range [0, {self.partition.n})"
            )
        return self.partition.shard(vertex)

    # -- reads ---------------------------------------------------------
    def snapshot(self) -> FleetSnapshot:
        """Pin the current fleet epoch (one atomic reference read)."""
        return self._current

    def distance(self, s: int, t: int) -> float:
        """``sd(s, t)`` on the current fleet snapshot."""
        return self.distance_on(self._current, s, t)

    def distance_on(self, snapshot: FleetSnapshot, s: int, t: int) -> float:
        """``sd(s, t)`` on a pinned fleet snapshot (retired ones too)."""
        with span(names.SPAN_FLEET_QUERY, s=s, t=t) as sp:
            start = perf_counter()
            value, route = self._resolve(snapshot, s, t)
            self._m_queries.inc(1, route=route)
            self._m_latency.observe(
                perf_counter() - start,
                exemplar=sp.trace_id if sp.active else None,
            )
            if sp.active:
                sp.set(route=route, fleet_epoch=snapshot.fleet_epoch)
        return value

    def _resolve(
        self, snapshot: FleetSnapshot, s: int, t: int
    ) -> Tuple[float, str]:
        shard_s, shard_t = self.route(s), self.route(t)
        combo = snapshot.boundary.combo(s, t)
        if BOUNDARY_SHARD in (shard_s, shard_t):
            return combo, "boundary"
        if shard_s != shard_t:
            return combo, "cross"
        local = self._shard_distances(snapshot, shard_s, [(s, t)])[0]
        return min(local, combo), "local"

    def _shard_distances(
        self,
        snapshot: FleetSnapshot,
        shard: int,
        pairs: Sequence[Tuple[int, int]],
    ) -> List[float]:
        token = snapshot.shard_tokens[shard]
        values = self._shards[shard].distance_many_on(token, pairs)
        return [
            float("inf") if value >= VIRTUAL_CUTOFF else value
            for value in values
        ]

    def query_many(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Answer a batch against ONE consistent fleet snapshot."""
        return self.query_many_on(self._current, pairs)

    def query_many_on(
        self, snapshot: FleetSnapshot, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        """Batch :meth:`distance_on`: one vectorised boundary min-plus
        for the whole batch, shard lookups only for same-shard pairs."""
        if not pairs:
            return []
        with span(names.SPAN_FLEET_QUERY, batch=len(pairs)) as sp:
            start = perf_counter()
            sources = np.fromiter(
                (s for s, _t in pairs), dtype=np.int64, count=len(pairs)
            )
            targets = np.fromiter(
                (t for _s, t in pairs), dtype=np.int64, count=len(pairs)
            )
            if not (
                bool(np.all(sources >= 0))
                and bool(np.all(sources < self.partition.n))
                and bool(np.all(targets >= 0))
                and bool(np.all(targets < self.partition.n))
            ):
                raise QueryError("query batch references out-of-range vertices")
            values = snapshot.boundary.combo_many(sources, targets)
            shard_s = self.partition.shard_of[sources]
            shard_t = self.partition.shard_of[targets]
            local_mask = (shard_s == shard_t) & (shard_s != BOUNDARY_SHARD)
            for shard in np.unique(shard_s[local_mask]):
                rows = np.flatnonzero(local_mask & (shard_s == shard))
                shard_pairs = [
                    (int(sources[i]), int(targets[i])) for i in rows
                ]
                local = self._shard_distances(
                    snapshot, int(shard), shard_pairs
                )
                np.minimum.at(values, rows, local)
            n_local = int(np.count_nonzero(local_mask))
            n_boundary = int(
                np.count_nonzero(
                    (shard_s == BOUNDARY_SHARD) | (shard_t == BOUNDARY_SHARD)
                )
            )
            self._m_queries.inc(n_local, route="local")
            self._m_queries.inc(n_boundary, route="boundary")
            self._m_queries.inc(
                len(pairs) - n_local - n_boundary, route="cross"
            )
            self._m_latency.observe(
                perf_counter() - start,
                exemplar=sp.trace_id if sp.active else None,
            )
        return [float(v) for v in values]

    # -- writes --------------------------------------------------------
    def apply(self, updates) -> FleetReport:
        """Two-phase fleet publish of one weight-update batch.

        Prepare: touched shards publish internally, the overlay and
        boundary table are rebuilt.  Commit: one atomic snapshot swap.
        See the module docstring for why readers never observe a mixed
        fleet epoch.
        """
        batch = list(updates)
        with self._write_lock:
            start = perf_counter()
            with span(names.SPAN_FLEET_APPLY, updates=len(batch)):
                per_shard, overlay_updates = split_updates(
                    self.partition, batch
                )
                current = self._current
                prepare_start = perf_counter()
                with span(
                    names.SPAN_FLEET_PREPARE, shards=len(per_shard)
                ):
                    tokens = list(current.shard_tokens)
                    epochs = list(current.shard_epochs)
                    reports: Dict[int, object] = {}
                    dirty = sorted(per_shard)
                    if self.processes:
                        # Fan the prepare out: every dirty worker applies
                        # its sub-batch concurrently, replies collected in
                        # shard order.
                        for shard in dirty:
                            self._shards[shard].request_apply(
                                per_shard[shard]
                            )
                        collected = [
                            self._shards[shard].collect_apply()
                            for shard in dirty
                        ]
                    else:
                        collected = [
                            self._shards[shard].apply(per_shard[shard])
                            for shard in dirty
                        ]
                    for shard, (token, epoch, report) in zip(
                        dirty, collected
                    ):
                        sub_batch = per_shard[shard]
                        tokens[shard] = token
                        epochs[shard] = epoch
                        reports[shard] = report
                        self._m_shard_updates.inc(
                            len(sub_batch), shard=str(shard)
                        )
                        self._apply_local(shard, sub_batch)
                    for (u, v), w in overlay_updates:
                        key = (u, v)
                        if not self._directed and u > v:
                            key = (v, u)
                        self._overlay[key] = float(w)
                    if overlay_updates:
                        self._m_shard_updates.inc(
                            len(overlay_updates), shard="overlay"
                        )
                    rebuilt = bool(per_shard) or bool(overlay_updates)
                    boundary_s = 0.0
                    boundary_stats: Optional[RefreshStats] = None
                    if rebuilt:
                        with span(names.SPAN_FLEET_BOUNDARY_REBUILD):
                            rebuild_start = perf_counter()
                            try:
                                table, boundary_stats = self._refresh_boundary(
                                    current,
                                    dirty,
                                    reports,
                                    len(overlay_updates),
                                )
                            finally:
                                # Record the wall time even when the
                                # refresh raises — a slow *failed* rebuild
                                # must still reach the flight recorder's
                                # slow-publish trigger.
                                boundary_s = perf_counter() - rebuild_start
                                self._m_rebuild.observe(boundary_s)
                    else:
                        table = current.boundary
                prepare_s = perf_counter() - prepare_start
                commit_start = perf_counter()
                with span(names.SPAN_FLEET_COMMIT):
                    self._current = FleetSnapshot(
                        fleet_epoch=current.fleet_epoch + 1,
                        shard_tokens=tuple(tokens),
                        shard_epochs=tuple(epochs),
                        boundary=table,
                    )
                    self._m_epoch.set(self._current.fleet_epoch)
                    self._m_publishes.inc()
                commit_s = perf_counter() - commit_start
            total_s = perf_counter() - start
            self._m_publish_duration.observe(total_s)
            return FleetReport(
                fleet_epoch=self._current.fleet_epoch,
                touched_shards=tuple(sorted(per_shard)),
                overlay_updates=len(overlay_updates),
                boundary_rebuilt=rebuilt,
                prepare_s=prepare_s,
                commit_s=commit_s,
                total_s=total_s,
                shard_reports=reports,
                boundary_s=boundary_s,
                boundary_stats=boundary_stats,
            )

    @staticmethod
    def _report_aff(report) -> Optional[frozenset]:
        """A shard report's V_aff (local ids), or None when unusable.

        The affected set only scopes the row refresh soundly when the
        shard oracle actually absorbed the whole batch: any deferral or
        degraded state means the coordinator's mirror graph is ahead of
        the oracle, so the shard falls back to a full row sweep.
        """
        healthy = OracleState.HEALTHY.value
        if isinstance(report, dict):
            if report.get("state", healthy) != healthy:
                return None
            if report.get("deferred") or report.get("promoted"):
                return None
            if report.get("caught_up"):
                return None
            aff = report.get("aff_vertices")
            return None if aff is None else frozenset(int(v) for v in aff)
        if getattr(report, "state", healthy) != healthy:
            return None
        if getattr(report, "deferred", 0) or getattr(report, "promoted", 0):
            return None
        if getattr(report, "caught_up", 0):
            return None
        aff = getattr(report, "aff_vertices", None)
        return None if aff is None else frozenset(aff)

    def _refresh_boundary(
        self,
        current: FleetSnapshot,
        dirty: Sequence[int],
        reports: Dict[int, object],
        overlay_writes: int,
    ) -> Tuple[BoundaryTable, Optional[RefreshStats]]:
        """Refresh the boundary table against the prepared shard state.

        Incremental mode plans an AFF-scoped row sweep per dirty shard
        (fanned out to the shard workers in process mode), folds the
        patches into the carried :class:`BoundaryState`, and runs the
        delta-seeded closure + masked OUTD refresh under a
        ``fleet.boundary.incremental`` span whose fields carry the
        ‖AFF‖/ops currencies for the boundedness sentinel.  With
        ``incremental=False`` the reference full rebuild runs instead
        (row blocks still scoped to dirty shards, as before).
        """
        version = current.fleet_epoch + 1
        if not self.incremental:
            self._m_boundary_full.inc(1, stage="disabled")
            table, self._boundary_state = build_boundary_state(
                self.partition,
                self._local_graphs,
                self._overlay,
                version=version,
                cache=self._boundary_state.rows,
                dirty=list(dirty),
            )
            return table, None
        stats = RefreshStats()
        stats.aff_norm += overlay_writes
        b = len(self.partition.boundary)
        plans: Dict[int, Optional[Tuple[List[int], List[int]]]] = {}
        for shard in dirty:
            interior = len(self.partition.shard_vertices[shard])
            aff = self._report_aff(reports.get(shard))
            plan = plan_row_refresh(interior, b, aff)
            plans[shard] = plan
            if plan is None:
                stats.fallbacks.append("rows")
                stats.aff_norm += interior + b
            else:
                stats.aff_norm += len(aff)
        with span(names.SPAN_FLEET_BOUNDARY_INCREMENTAL) as sp:
            if self.processes:
                for shard in dirty:
                    self._shards[shard].request_rows(plans[shard])
                patches = {
                    shard: self._shards[shard].collect_rows()
                    for shard in dirty
                }
            else:
                patches = {
                    shard: scoped_row_patch(
                        self._local_graphs[shard],
                        len(self.partition.shard_vertices[shard]),
                        b,
                        plans[shard],
                        csr=self._shard_csrs[shard].matrix,
                    )
                    for shard in dirty
                }
            new_rows: Dict[int, ShardRows] = {}
            for shard in dirty:
                patch = patches[shard]
                stats.rows_refreshed += int(patch["sources"])
                stats.row_touches += int(patch["touches"])
                new_rows[shard] = apply_row_patch(
                    self._boundary_state.rows[shard], patch
                )
            table, state, stats = refresh_boundary(
                self.partition,
                self._overlay,
                self._boundary_state,
                new_rows,
                version=version,
                stats=stats,
            )
            self._boundary_state = state
            self._m_boundary_rows.inc(stats.rows_refreshed)
            self._m_boundary_cells.inc(stats.closure_cells)
            for stage in stats.fallbacks:
                self._m_boundary_full.inc(1, stage=stage)
            if sp.active:
                sp.set(
                    aff_norm=stats.aff_norm,
                    diff=stats.diff_cells,
                    ops_total=stats.ops_total,
                    rows_refreshed=stats.rows_refreshed,
                    closure_cells=stats.closure_cells,
                    outd_cells=stats.outd_cells,
                    fallbacks=len(stats.fallbacks),
                )
        return table, stats

    def _apply_local(self, shard: int, sub_batch) -> None:
        """Mirror a shard's updates onto the coordinator's graph copy."""
        graph = self._local_graphs[shard]
        csr = self._shard_csrs[shard]
        to_local = self._to_local[shard]
        for (u, v), w in sub_batch:
            lu, lv = int(to_local[u]), int(to_local[v])
            graph.set_weight(lu, lv, w)
            csr.set_weight(lu, lv, w)

    # -- lifecycle -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Fleet-level stats plus each shard's serve stats."""
        snapshot = self._current
        return {
            "fleet_epoch": snapshot.fleet_epoch,
            "shards": self.partition.shards,
            "cut_depth": self.partition.cut_depth,
            "boundary_vertices": len(self.partition.boundary),
            "shard_epochs": list(snapshot.shard_epochs),
            "shard_sizes": [
                len(members) for members in self.partition.shard_vertices
            ],
            "per_shard": [shard.stats() for shard in self._shards],
        }

    def close(self) -> None:
        """Shut every shard server (and worker process) down."""
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
