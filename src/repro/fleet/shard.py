"""One shard of the fleet: a :class:`DistanceServer` plus id mapping.

A :class:`ShardServer` owns the shard graph (local vertex ids: interior
first, then the full boundary — see
:func:`repro.fleet.partition.shard_local_ids`), the dynamic oracle
built over it, and the embedded :class:`~repro.serve.server.DistanceServer`
that versions it with epoch snapshots.  The coordinator talks to shards
only in *global* vertex ids; translation happens here, in one place.

Shard servers share the coordinator's metrics registry by default, so
per-shard serve metrics (`repro_serve_*`) and fleet metrics
(`repro_fleet_*`) land in one scrape.  The two-phase publish contract
(docs/sharding.md): :meth:`apply` prepares and *publishes the shard
internally*, but fleet readers never see the new shard epoch until the
coordinator's atomic fleet-snapshot swap — they read shards only
through the pinned :class:`~repro.serve.epoch.EpochSnapshot` objects
carried by their fleet snapshot, and retired snapshots stay queryable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dynamic import DynamicCH, DynamicH2H
from repro.core.oracle import DijkstraOracle
from repro.errors import ReproError
from repro.fleet.partition import Partition, build_shard_graph, shard_local_ids
from repro.serve.server import DistanceServer

try:  # directed oracles are optional per-flavour
    from repro.directed.dynamic import DynamicDiCH, DynamicDiH2H
except ImportError:  # pragma: no cover - directed package always ships
    DynamicDiCH = DynamicDiH2H = None  # type: ignore[assignment]

_UNDIRECTED_ORACLES = {
    "ch": DynamicCH,
    "h2h": DynamicH2H,
    "dijkstra": DijkstraOracle,
}


def build_shard_oracle(shard_graph, oracle: str, backend: Optional[str] = None):
    """Construct the per-shard oracle named by ``oracle``.

    Directed shard graphs use the directed oracle flavours; the
    ``dijkstra`` baseline is undirected-only.
    """
    directed = hasattr(shard_graph, "arcs")
    if directed:
        table = {"ch": DynamicDiCH, "h2h": DynamicDiH2H}
        if oracle not in table or table[oracle] is None:
            raise ReproError(f"no directed fleet oracle {oracle!r}")
        return table[oracle](shard_graph)
    if oracle not in _UNDIRECTED_ORACLES:
        raise ReproError(f"unknown fleet oracle {oracle!r}")
    cls = _UNDIRECTED_ORACLES[oracle]
    if oracle == "dijkstra":
        return cls(shard_graph)
    if backend is not None:
        return cls(shard_graph, backend=backend)
    return cls(shard_graph)


class ShardServer:
    """A :class:`DistanceServer` over one shard graph, global-id facing.

    ``to_local`` maps global vertex ids to shard-local ids (``-1`` when
    the vertex is neither interior to this shard nor boundary);
    ``to_global`` is the inverse enumeration.
    """

    def __init__(
        self,
        graph,
        partition: Partition,
        shard: int,
        *,
        oracle: str = "h2h",
        backend: Optional[str] = None,
        cache_capacity: int = 65536,
        workers: int = 1,
        registry=None,
    ) -> None:
        self.shard = shard
        self.partition = partition
        self.to_local, self.to_global = shard_local_ids(partition, shard)
        self.interior = len(partition.shard_vertices[shard])
        self.graph = build_shard_graph(graph, partition, shard)
        self.server = DistanceServer(
            build_shard_oracle(self.graph, oracle, backend),
            cache_capacity=cache_capacity,
            workers=workers,
            registry=registry,
        )

    # -- reads ---------------------------------------------------------
    def snapshot(self):
        """Pin the shard's current epoch snapshot."""
        return self.server.snapshot()

    def pin(self):
        """Uniform shard protocol: ``(read token, epoch number)``.

        For an in-process shard the token is the pinned
        :class:`~repro.serve.epoch.EpochSnapshot` itself; the
        process-backed twin (:class:`repro.fleet.proc.ShardProcessHandle`)
        returns the epoch number as its token.
        """
        snapshot = self.server.snapshot()
        return snapshot, snapshot.epoch

    def distance_on(self, snapshot, s: int, t: int) -> float:
        """Distance between *global* vertices on a pinned shard snapshot."""
        ls, lt = int(self.to_local[s]), int(self.to_local[t])
        if ls < 0 or lt < 0:
            raise ReproError(
                f"vertex pair ({s}, {t}) not resident in shard {self.shard}"
            )
        return self.server.distance_on(snapshot, ls, lt)

    def distance_many_on(
        self, snapshot, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        """Batch :meth:`distance_on` (sequential; callers batch shards)."""
        return [self.distance_on(snapshot, s, t) for s, t in pairs]

    # -- writes --------------------------------------------------------
    def translate(
        self, updates: Sequence[Tuple[Tuple[int, int], float]]
    ) -> List[Tuple[Tuple[int, int], float]]:
        """Rewrite a global update batch into shard-local ids."""
        local: List[Tuple[Tuple[int, int], float]] = []
        for (u, v), w in updates:
            lu, lv = int(self.to_local[u]), int(self.to_local[v])
            if lu < 0 or lv < 0:
                raise ReproError(
                    f"update edge ({u}, {v}) not resident in shard {self.shard}"
                )
            local.append(((lu, lv), w))
        return local

    def apply(self, updates: Sequence[Tuple[Tuple[int, int], float]]):
        """Prepare phase: apply a *global* batch, publish shard-internally.

        Returns ``(token, epoch, report)`` — the newly published (and
        pinned) shard snapshot, its epoch, and the serve-layer
        :class:`~repro.serve.server.ServeReport`.  The fleet epoch
        still points at the previous shard snapshot until the
        coordinator commits; readers pinned there keep their answers
        because retired epoch snapshots stay queryable.
        """
        report = self.server.apply(self.translate(updates))
        snapshot = self.server.snapshot()
        return snapshot, snapshot.epoch, report

    def stats(self) -> Dict[str, object]:
        stats = dict(self.server.stats())
        stats["shard"] = self.shard
        stats["interior_vertices"] = self.interior
        return stats

    def close(self) -> None:
        self.server.close()
