"""``repro.fleet`` — a sharded :class:`DistanceServer` fleet (docs/sharding.md).

ROADMAP item 2: the single-process serving layer caps aggregate
throughput at one core's worth of epoch publishes.  This package
partitions the road network with the balanced separators the H2H tree
decomposition already computes (:mod:`repro.fleet.partition`), stands
one :class:`~repro.serve.server.DistanceServer` per shard up — in
process, or in its own worker process (:mod:`repro.fleet.proc`) — and
answers cross-shard queries through a precomputed boundary-vertex
distance table (:mod:`repro.fleet.boundary`):

    d(s, t) = min over boundary b1, b2 of
              d_shard(s, b1) + d_boundary(b1, b2) + d_shard(b2, t)

The :class:`~repro.fleet.coordinator.FleetCoordinator` routes queries by
a vertex → shard map, fans each update batch out only to the shards
whose edges it touches, and publishes fleet epochs with a **two-phase
swap**: every touched shard prepares its next snapshot first, the
boundary table is rebuilt against the prepared snapshots, and only then
does one atomic reference swap make the new fleet epoch visible — so a
reader pinned on a fleet snapshot never observes two shards at
different epochs (the invariant ``tests/test_fleet_epochs.py`` audits).

``repro serve-bench --fleet N`` (:mod:`repro.fleet.bench`) drives the
fleet with a closed-loop batched query load plus a live update stream
and emits ``BENCH_serve_fleet.json``.
"""

from repro.fleet.boundary import BoundaryTable, build_boundary
from repro.fleet.coordinator import FleetCoordinator, FleetReport, FleetSnapshot
from repro.fleet.partition import (
    Partition,
    build_shard_graph,
    route_update,
    separator_partition,
)
from repro.fleet.shard import ShardServer

__all__ = [
    "BoundaryTable",
    "FleetCoordinator",
    "FleetReport",
    "FleetSnapshot",
    "Partition",
    "ShardServer",
    "build_boundary",
    "build_shard_graph",
    "route_update",
    "separator_partition",
]
