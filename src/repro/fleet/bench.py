"""``repro serve-bench --fleet N``: the fleet closed-loop load harness.

Drives a :class:`~repro.fleet.coordinator.FleetCoordinator` with a
closed-loop batched query plane plus a live update stream and reports
the figures the CI gate watches (``BENCH_serve_fleet.json``):

* ``throughput_qps`` — aggregate batched query throughput across
  ``repeats`` warm closed-loop passes (each pass answers the whole pair
  set as one ``query_many`` batch against one pinned fleet snapshot);
* ``latency_us`` — p50/p99 of *individually issued* ``distance()``
  calls (strictly slower than the batched plane: one span, one route,
  one min-plus per call — reported honestly rather than derived from
  the batch figure);
* ``cross_shard_fraction`` — non-local routes over all routed queries,
  straight from the ``repro_fleet_queries_total`` counters;
* ``fleet_publish_latency`` — percentiles over every two-phase publish
  driven by the update stream (alternating increases and true
  decreases that restore the previously raised edges);
* ``small_batch_publish_latency`` — percentiles over a trailing phase
  of 1-edge increase/restore publishes, the regime where the
  AFF-scoped incremental boundary refresh pays off hardest because
  publish cost tracks the update instead of the fleet.

Note the headline throughput on a single-core host comes from the
vectorised boundary min-plus, not process parallelism; ``processes=True``
exists for architectural fidelity and is benchmarked the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fleet.coordinator import FleetCoordinator
from repro.graph.generators import road_network
from repro.obs import names
from repro.obs.bench import BenchRecord, latency_percentiles
from repro.workloads.updates import increase_batch, restore_batch, sample_edges


@dataclass(frozen=True)
class FleetBenchConfig:
    """Knobs of one fleet bench run (mirrors ``BenchConfig`` style)."""

    oracle: str = "h2h"  #: per-shard oracle: ch | h2h | dijkstra
    vertices: int = 400  #: approximate graph size
    seed: int = 7  #: workload seed (graph, pairs, updates)
    shards: int = 4  #: requested partition width
    queries: int = 600  #: closed-loop batch size
    repeats: int = 5  #: warm passes aggregated into the qps figure
    updates: int = 3  #: update batches in the live stream
    batch: int = 8  #: edges per update batch
    factor: float = 2.0  #: weight multiplier for increase rounds
    backend: Optional[str] = None  #: oracle backend override
    cache_capacity: int = 65536  #: per-shard query cache
    processes: bool = False  #: one worker process per shard
    latency_samples: int = 300  #: individually timed distance() calls
    incremental: bool = True  #: AFF-scoped incremental boundary refresh
    small_batches: int = 6  #: trailing 1-edge increase/restore publishes


@dataclass
class FleetBenchResult:
    """Everything one fleet bench run measured."""

    config: FleetBenchConfig
    shards: int  #: effective shard count (may be < requested)
    boundary_vertices: int
    cut_depth: int
    shard_sizes: List[int]
    build_s: float
    cold_per_query_s: float
    warm_per_query_s: float
    throughput_qps: float
    query_samples_s: List[float] = field(default_factory=list, repr=False)
    publish_samples_s: List[float] = field(default_factory=list, repr=False)
    #: Publish wall times of the trailing 1-edge increase/restore phase.
    small_publish_samples_s: List[float] = field(
        default_factory=list, repr=False
    )
    #: Per-publish boundary refresh wall times (the incremental stage).
    boundary_samples_s: List[float] = field(default_factory=list, repr=False)
    #: Per-publish (ops_total, aff_norm, diff_cells) from RefreshStats.
    refresh_work: List[Tuple[int, int, int]] = field(
        default_factory=list, repr=False
    )
    cross_shard_fraction: float = 0.0
    routes: Dict[str, int] = field(default_factory=dict)
    checksum: float = 0.0  #: sum of finite answers (differential anchor)
    metrics: dict = field(default_factory=dict, repr=False)  #: registry snapshot

    def as_dict(self) -> dict:
        return {
            "config": dict(self.config.__dict__),
            "shards": self.shards,
            "boundary_vertices": self.boundary_vertices,
            "cut_depth": self.cut_depth,
            "shard_sizes": list(self.shard_sizes),
            "build_s": self.build_s,
            "cold_per_query_us": self.cold_per_query_s * 1e6,
            "warm_per_query_us": self.warm_per_query_s * 1e6,
            "throughput_qps": self.throughput_qps,
            "latency_us": latency_percentiles(self.query_samples_s),
            "fleet_publish_latency_us": latency_percentiles(
                self.publish_samples_s
            ),
            "small_batch_publish_latency_us": latency_percentiles(
                self.small_publish_samples_s
            ),
            "boundary_refresh_latency_us": latency_percentiles(
                self.boundary_samples_s
            ),
            "cross_shard_fraction": self.cross_shard_fraction,
            "routes": dict(self.routes),
            "checksum": self.checksum,
        }

    def refresh_ratios(self) -> Dict[str, float]:
        """Boundary-refresh subboundedness ratios (Theorem 4.1/5.1 shape).

        The worst per-publish ``ops_total / linearithmic(measure)`` over
        the update stream, with ``measure = ‖AFF‖`` (shard-local
        affected sets plus overlay writes) and ``measure = |DIFF|``
        (boundary-table cells that actually changed).  The max — not
        the mean — goes on record because the boundedness sentinel fits
        its envelope as ``margin × max(committed ratio)``.
        """
        from repro.core.bounds import subboundedness_ratio

        if not self.refresh_work:
            return {}
        aff_ratios = [
            subboundedness_ratio(ops, aff)
            for ops, aff, _diff in self.refresh_work
        ]
        diff_ratios = [
            subboundedness_ratio(ops, diff)
            for ops, _aff, diff in self.refresh_work
        ]
        return {
            "ops_per_aff_budget": max(aff_ratios),
            "ops_per_diff_budget": max(diff_ratios),
        }

    def to_bench_record(self, name: str = "serve_fleet") -> BenchRecord:
        """This run in the shared BENCH shape (see :mod:`repro.obs.bench`)."""
        return BenchRecord(
            name=name,
            config=dict(self.config.__dict__),
            latency_us=latency_percentiles(self.query_samples_s),
            throughput_qps=self.throughput_qps,
            ratios=self.refresh_ratios(),
            index={},
            extra={
                "build_s": self.build_s,
                "shards": self.shards,
                "boundary_vertices": self.boundary_vertices,
                "cut_depth": self.cut_depth,
                "shard_sizes": list(self.shard_sizes),
                "cold_per_query_us": self.cold_per_query_s * 1e6,
                "warm_per_query_us": self.warm_per_query_s * 1e6,
                "cross_shard_fraction": self.cross_shard_fraction,
                "routes": dict(self.routes),
                "fleet_publish_latency_us": latency_percentiles(
                    self.publish_samples_s
                ),
                "small_batch_publish_latency_us": latency_percentiles(
                    self.small_publish_samples_s
                ),
                "boundary_refresh_latency_us": latency_percentiles(
                    self.boundary_samples_s
                ),
                "checksum": self.checksum,
            },
        )


def _route_counts(coordinator: FleetCoordinator) -> Dict[str, int]:
    """Per-route query totals from the fleet counters."""
    counts: Dict[str, int] = {}
    entry = coordinator.metrics.snapshot().get(names.FLEET_QUERIES, {})
    for row in entry.get("series", ()):
        route = row.get("labels", {}).get("route")
        if route is not None:
            counts[route] = counts.get(route, 0) + int(row.get("value", 0))
    return counts


def fleet_bench(config: FleetBenchConfig) -> FleetBenchResult:
    """Run the fleet bench; see the module docstring for the phases."""
    graph = road_network(config.vertices, seed=config.seed)
    rng = np.random.default_rng(config.seed)

    build_start = perf_counter()
    coordinator = FleetCoordinator(
        graph.copy(),
        shards=config.shards,
        oracle=config.oracle,
        backend=config.backend,
        cache_capacity=config.cache_capacity,
        workers=1,
        processes=config.processes,
        incremental=config.incremental,
    )
    build_s = perf_counter() - build_start

    n = graph.n
    pairs: List[Tuple[int, int]] = [
        (int(rng.integers(n)), int(rng.integers(n)))
        for _ in range(config.queries)
    ]

    try:
        # Cold pass: first touch of caches and the min-plus plane.
        cold_start = perf_counter()
        answers = coordinator.query_many(pairs)
        cold_s = perf_counter() - cold_start
        checksum = float(sum(a for a in answers if a != float("inf")))

        # Warm closed-loop passes: the aggregate-throughput figure.
        warm_start = perf_counter()
        for _ in range(config.repeats):
            coordinator.query_many(pairs)
        warm_s = perf_counter() - warm_start
        total_queries = config.queries * config.repeats
        warm_per_query_s = warm_s / total_queries if total_queries else 0.0
        throughput = total_queries / warm_s if warm_s > 0 else 0.0

        # Individually issued queries: the honest latency percentiles.
        samples: List[float] = []
        for s, t in pairs[: config.latency_samples]:
            start = perf_counter()
            coordinator.distance(s, t)
            samples.append(perf_counter() - start)

        # Live update stream: two-phase publish latency.  Restore rounds
        # pop the previous increase so they are true weight decreases,
        # not no-op rewrites of untouched edges.
        publishes: List[float] = []
        boundary_samples: List[float] = []
        refresh_work: List[Tuple[int, int, int]] = []
        raised: List[list] = []

        def timed_publish(updates, bucket: List[float]) -> None:
            report = coordinator.apply(updates)
            bucket.append(report.total_s)
            boundary_samples.append(report.boundary_s)
            stats = report.boundary_stats
            if stats is not None:
                refresh_work.append(
                    (stats.ops_total, stats.aff_norm, stats.diff_cells)
                )
            graph.apply_batch(updates)

        for round_no in range(config.updates):
            if round_no % 2 == 0 or not raised:
                edges = sample_edges(
                    graph, config.batch, seed=config.seed + 101 + round_no
                )
                updates = increase_batch(edges, factor=config.factor)
                raised.append(restore_batch(edges))
            else:
                updates = raised.pop()
            timed_publish(updates, publishes)
            coordinator.query_many(pairs)  # post-publish warm pass

        # Trailing small-batch phase: 1-edge increase/true-restore pairs.
        # This is the regime the AFF-scoped refresh targets — publish
        # cost should track the single edge, not the fleet.
        small_publishes: List[float] = []
        raised.clear()
        for round_no in range(config.small_batches):
            if round_no % 2 == 0 or not raised:
                edges = sample_edges(
                    graph, 1, seed=config.seed + 501 + round_no
                )
                updates = increase_batch(edges, factor=config.factor)
                raised.append(restore_batch(edges))
            else:
                updates = raised.pop()
            timed_publish(updates, small_publishes)

        routes = _route_counts(coordinator)
        routed = sum(routes.values())
        non_local = routed - routes.get("local", 0)
        cross_fraction = non_local / routed if routed else 0.0

        metrics = coordinator.metrics.snapshot()
        partition = coordinator.partition
        return FleetBenchResult(
            config=config,
            shards=coordinator.shards,
            boundary_vertices=len(partition.boundary),
            cut_depth=partition.cut_depth,
            shard_sizes=[len(m) for m in partition.shard_vertices],
            build_s=build_s,
            cold_per_query_s=cold_s / config.queries if config.queries else 0.0,
            warm_per_query_s=warm_per_query_s,
            throughput_qps=throughput,
            query_samples_s=samples,
            publish_samples_s=publishes,
            small_publish_samples_s=small_publishes,
            boundary_samples_s=boundary_samples,
            refresh_work=refresh_work,
            cross_shard_fraction=cross_fraction,
            routes=routes,
            checksum=checksum,
            metrics=metrics,
        )
    finally:
        coordinator.close()
