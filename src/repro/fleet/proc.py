"""Process-backed shards: one spawned worker per shard server.

Mirrors the spawn machinery of :mod:`repro.perf.parallel`: a
module-level worker entry (picklable under the ``spawn`` start method),
one duplex :class:`multiprocessing.Pipe` per worker, ``("error",
traceback)`` replies surfaced as :class:`ReproError`, and a
stop-join-terminate shutdown ladder.

The worker hosts a full :class:`~repro.fleet.shard.ShardServer` and
keeps **every published epoch snapshot keyed by epoch number**, so the
coordinator's two-phase contract survives the process boundary: a
fleet snapshot pins shard *epoch numbers* as its read tokens, and a
query RPC names the epoch it wants — readers pinned on a retired fleet
epoch still get answers from exactly that shard epoch.

Every RPC carries the caller's :class:`~repro.obs.context.TraceContext`
as a dict; the worker re-enters it before touching the shard server,
so worker-side ``serve.query`` spans parent under the coordinator's
``fleet.query`` span whenever the worker has a trace sink installed.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.fleet.partition import Partition
from repro.obs.context import TraceContext, current_context, use_context


def _shard_worker_main(
    conn,
    graph,
    partition: Partition,
    shard: int,
    oracle: str,
    backend: Optional[str],
    cache_capacity: int,
) -> None:
    """Worker entry: build the shard server, answer RPCs until stopped."""
    from repro.fleet.boundary import ShardCSR, scoped_row_patch
    from repro.fleet.partition import build_shard_graph
    from repro.fleet.shard import ShardServer

    try:
        server = ShardServer(
            graph,
            partition,
            shard,
            oracle=oracle,
            backend=backend,
            cache_capacity=cache_capacity,
            workers=1,
        )
        # The shard server's own graph is frozen inside epoch 0's oracle
        # snapshot, so row Dijkstras run on a dedicated mirror that the
        # apply handler keeps current.
        mirror = build_shard_graph(graph, partition, shard)
        mirror_csr = ShardCSR(mirror)
        snapshots = {}
        token, epoch = server.pin()
        snapshots[epoch] = token
        conn.send(("ok", epoch))
    except Exception:  # pragma: no cover - construction failures
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            message = conn.recv()
        except EOFError:  # pragma: no cover - coordinator died
            break
        kind = message[0]
        try:
            if kind == "stop":
                break
            if kind == "query":
                _kind, epoch, pairs, ctx = message
                context = TraceContext.from_dict(ctx) if ctx else None
                if epoch not in snapshots:
                    raise ReproError(
                        f"shard {shard} has no pinned epoch {epoch}"
                    )
                if context is not None:
                    with use_context(context):
                        values = server.distance_many_on(
                            snapshots[epoch], pairs
                        )
                else:
                    values = server.distance_many_on(snapshots[epoch], pairs)
                conn.send(("ok", values))
            elif kind == "apply":
                _kind, updates, ctx = message
                context = TraceContext.from_dict(ctx) if ctx else None
                if context is not None:
                    with use_context(context):
                        token, epoch, report = server.apply(updates)
                else:
                    token, epoch, report = server.apply(updates)
                snapshots[epoch] = token
                for (lu, lv), w in server.translate(updates):
                    mirror.set_weight(lu, lv, w)
                    mirror_csr.set_weight(lu, lv, w)
                aff = report.aff_vertices
                conn.send(
                    (
                        "ok",
                        epoch,
                        {
                            "epoch": report.epoch,
                            "affected": report.affected,
                            "carried": report.carried,
                            "evicted": report.evicted,
                            "state": report.state,
                            "deferred": report.deferred,
                            "dropped": report.dropped,
                            "aff_vertices": (
                                None if aff is None else sorted(aff)
                            ),
                        },
                    )
                )
            elif kind == "rows":
                _kind, plan, ctx = message
                context = TraceContext.from_dict(ctx) if ctx else None
                boundary = len(partition.boundary)
                if context is not None:
                    with use_context(context):
                        patch = scoped_row_patch(
                            mirror,
                            server.interior,
                            boundary,
                            plan,
                            csr=mirror_csr.matrix,
                        )
                else:
                    patch = scoped_row_patch(
                        mirror,
                        server.interior,
                        boundary,
                        plan,
                        csr=mirror_csr.matrix,
                    )
                conn.send(("ok", patch))
            elif kind == "stats":
                conn.send(("ok", server.stats()))
            elif kind == "metrics":
                conn.send(("ok", server.server.metrics.snapshot()))
            else:  # pragma: no cover - protocol drift
                raise ReproError(f"unknown shard RPC {kind!r}")
        except Exception:
            conn.send(("error", traceback.format_exc()))
    server.close()
    conn.close()


class ShardProcessHandle:
    """Coordinator-side twin of one worker-hosted shard server.

    Implements the same uniform shard protocol as
    :class:`~repro.fleet.shard.ShardServer` (``pin`` /
    ``distance_many_on`` / ``apply`` / ``stats`` / ``close``) with the
    shard's *epoch number* as the read token.
    """

    def __init__(
        self,
        graph,
        partition: Partition,
        shard: int,
        *,
        oracle: str = "h2h",
        backend: Optional[str] = None,
        cache_capacity: int = 65536,
    ) -> None:
        self.shard = shard
        ctx = multiprocessing.get_context("spawn")
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                child,
                graph,
                partition,
                shard,
                oracle,
                backend,
                cache_capacity,
            ),
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._epoch = self._collect()

    def _collect(self):
        reply = self._conn.recv()
        if reply[0] == "error":
            raise ReproError(
                f"shard {self.shard} worker failed:\n{reply[1]}"
            )
        return reply[1] if len(reply) == 2 else reply[1:]

    @staticmethod
    def _ctx_dict() -> Optional[dict]:
        context = current_context()
        return context.to_dict() if context is not None else None

    def pin(self) -> Tuple[int, int]:
        """``(token, epoch)`` — over RPC the token IS the epoch number."""
        return self._epoch, self._epoch

    def distance_many_on(
        self, token: int, pairs: Sequence[Tuple[int, int]]
    ) -> List[float]:
        self._conn.send(("query", int(token), list(pairs), self._ctx_dict()))
        return self._collect()

    def apply(self, updates):
        self.request_apply(updates)
        return self.collect_apply()

    def request_apply(self, updates) -> None:
        """Fire the apply RPC without blocking on the reply.

        Pair with :meth:`collect_apply`; the coordinator fans requests
        out to every dirty shard first so the workers prepare in
        parallel, then collects in the same order.
        """
        self._conn.send(("apply", list(updates), self._ctx_dict()))

    def collect_apply(self):
        epoch, report = self._collect()
        self._epoch = epoch
        return epoch, epoch, report

    def request_rows(self, plan) -> None:
        """Fire an AFF-scoped row-sweep RPC (see ``scoped_row_patch``).

        ``plan`` is ``None`` for a full sweep or ``(dirty_cols,
        aff_rows)``; the worker runs the Dijkstras on its own mirror
        graph so dirty shards sweep concurrently across processes.
        """
        self._conn.send(("rows", plan, self._ctx_dict()))

    def collect_rows(self):
        return self._collect()

    def stats(self) -> Dict[str, object]:
        self._conn.send(("stats",))
        return self._collect()

    def metrics_snapshot(self):
        """The worker-side registry snapshot (for cross-process merges)."""
        self._conn.send(("metrics",))
        return self._collect()

    def close(self) -> None:
        if self._proc.is_alive():
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(timeout=5)
        self._conn.close()
