"""Separator-based graph partitioning for the fleet (docs/sharding.md).

The H2H tree decomposition (:class:`repro.h2h.tree.TreeDecomposition`)
has the property that every edge of the contraction hierarchy — and
``G`` is a subgraph of ``sc(G)`` — connects a vertex to one of its tree
ancestors.  Cutting the tree at depth ``D`` therefore yields a vertex
separator for free:

* **boundary** ``B`` = every vertex at depth ``< D`` (the top of the
  tree: exactly the high-order separator vertices the contraction
  ordering eliminated last);
* **shards** = the subtrees rooted at depth ``D``, greedily packed into
  ``shards`` balanced groups (largest-subtree-first into the lightest
  shard).

No original-graph edge connects the interiors of two distinct shards:
an edge's deeper endpoint sees the other endpoint as a tree ancestor,
which is either inside the same subtree (same shard) or above the cut
(boundary).  :meth:`Partition.validate` re-checks this from first
principles on the input graph.

Each shard graph is the subgraph induced on ``interior_k ∪ B`` minus
boundary–boundary edges (those live in the coordinator's overlay so a
boundary-edge update never fans out to every shard), plus a *virtual
chain* over the boundary vertices with weight :data:`VIRTUAL_WEIGHT`.
The chain guarantees the shard graph is connected (CH/H2H construction
refuses disconnected inputs) without perturbing any real distance:
every real path weighs far less than ``VIRTUAL_WEIGHT``, and any
computed distance ``>= VIRTUAL_WEIGHT`` is mapped back to infinity by
:mod:`repro.fleet.boundary`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ch.indexing import ch_indexing
from repro.errors import ReproError
from repro.graph.graph import RoadNetwork
from repro.h2h.tree import TreeDecomposition

#: Weight of the virtual boundary-chain edges added to every shard
#: graph for connectivity.  ``2**49`` keeps three-term sums exactly
#: representable in float64 (``3 * 2**49 < 2**53``) while dwarfing any
#: real path weight (generator weights are ``<= 10**9`` per edge).
VIRTUAL_WEIGHT: float = float(2**49)

#: Largest edge weight the fleet accepts in an update; anything at or
#: above this would blur the real/virtual distance separation.
MAX_REAL_WEIGHT: float = float(2**40)

#: ``shard_of`` value marking a boundary vertex (owned by no shard).
BOUNDARY_SHARD: int = -1


@dataclass(frozen=True)
class Partition:
    """A separator partition of a road network.

    ``shard_of[v]`` is the owning shard for interior vertices and
    :data:`BOUNDARY_SHARD` for boundary vertices, so routing a query
    endpoint is one array lookup.  ``boundary`` is sorted; its position
    in the list is the vertex's *boundary index* used by every matrix
    in :mod:`repro.fleet.boundary`.
    """

    n: int
    shards: int
    cut_depth: int
    boundary: Tuple[int, ...]
    shard_of: np.ndarray
    shard_vertices: Tuple[Tuple[int, ...], ...]
    boundary_index: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.boundary_index:
            object.__setattr__(
                self,
                "boundary_index",
                {v: i for i, v in enumerate(self.boundary)},
            )

    def shard(self, vertex: int) -> int:
        """Owning shard of ``vertex`` (:data:`BOUNDARY_SHARD` if boundary)."""
        return int(self.shard_of[vertex])

    def is_boundary(self, vertex: int) -> bool:
        return int(self.shard_of[vertex]) == BOUNDARY_SHARD

    def members(self, shard: int) -> Tuple[int, ...]:
        """Interior vertices of ``shard`` (sorted, excludes boundary)."""
        return self.shard_vertices[shard]

    def validate(self, graph) -> None:
        """Re-check the separator invariant against ``graph``.

        Raises :class:`ReproError` if any original edge connects the
        interiors of two distinct shards, or if the shard map is not a
        total function over the vertex set.
        """
        if int(self.shard_of.shape[0]) != self.n:
            raise ReproError("partition shard_of has wrong length")
        for v in range(self.n):
            owner = int(self.shard_of[v])
            if owner == BOUNDARY_SHARD:
                if v not in self.boundary_index:
                    raise ReproError(f"vertex {v} marked boundary but unlisted")
            elif not 0 <= owner < self.shards:
                raise ReproError(f"vertex {v} routed to bad shard {owner}")
        for u, v, _w in _iter_edges(graph):
            su, sv = int(self.shard_of[u]), int(self.shard_of[v])
            if su != BOUNDARY_SHARD and sv != BOUNDARY_SHARD and su != sv:
                raise ReproError(
                    f"edge ({u}, {v}) crosses shard interiors {su}/{sv}"
                )


def _iter_edges(graph):
    """Yield ``(u, v, w)`` for undirected graphs or digraphs alike."""
    if hasattr(graph, "arcs"):
        yield from graph.arcs()
    else:
        yield from graph.edges()


def _projection(graph) -> RoadNetwork:
    """Undirected view used to build the partition tree."""
    if hasattr(graph, "symmetrized"):
        return graph.symmetrized()
    return graph


def separator_partition(
    graph,
    shards: int,
    *,
    cut_depth: int = 0,
    max_boundary: int = 0,
    balance: float = 1.25,
) -> Partition:
    """Partition ``graph`` into ``shards`` parts via a tree antichain cut.

    Builds the contraction hierarchy and its tree decomposition on the
    (symmetrized) graph, then carves out an **antichain of subtree
    roots**: starting from the tree root, the largest remaining subtree
    is repeatedly split — its root joins the boundary, its child
    subtrees become candidate pieces — until there are at least
    ``shards`` pieces none larger than ``balance * n / shards``, or the
    ``max_boundary`` budget (default ``max(8 * shards, 32)``) is spent.
    Every ancestor of a chosen root is in the boundary, so the
    separator invariant holds for any antichain.  Pieces are then
    packed largest-first into the lightest shard.

    ``cut_depth > 0`` forces the legacy uniform cut instead (boundary =
    everything above that depth).  When the tree is too path-like to
    yield ``shards`` non-empty parts the effective shard count is
    reduced (``Partition.shards`` records the actual number);
    requesting fewer than one shard raises :class:`ReproError`.
    """
    if shards < 1:
        raise ReproError("fleet needs at least one shard")
    projection = _projection(graph)
    n = projection.n
    sc = ch_indexing(projection)
    tree = TreeDecomposition(sc)
    depth = tree.depth

    # Subtree sizes (children accumulate into parents bottom-up).
    sizes = np.ones(n, dtype=np.int64)
    for v in reversed(tree.top_down_order):
        parent = int(tree.parent[v])
        if parent >= 0:
            sizes[parent] += sizes[v]

    boundary_set = set()
    if cut_depth > 0:
        roots = [v for v in range(n) if depth[v] == cut_depth]
        if not roots:
            raise ReproError(f"cut depth {cut_depth} leaves no subtree roots")
        boundary_set = {v for v in range(n) if depth[v] < cut_depth}
    else:
        budget = max_boundary if max_boundary > 0 else max(8 * shards, 32)
        heap = [(-int(sizes[tree.root]), tree.root)]
        leaves: List[int] = []
        while heap:
            cap = max(1.0, balance * (n - len(boundary_set)) / shards)
            neg_size, v = heap[0]
            if len(heap) + len(leaves) >= shards and -neg_size <= cap:
                break
            if len(boundary_set) >= budget:
                break
            heapq.heappop(heap)
            children = tree.children[v]
            if not len(children):
                leaves.append(v)
                continue
            boundary_set.add(v)
            for child in children:
                heapq.heappush(heap, (-int(sizes[child]), int(child)))
        roots = leaves + [v for _neg, v in heap]
        if not roots:
            raise ReproError("antichain cut consumed the whole tree")

    effective = min(shards, len(roots))
    loads = [0] * effective
    assignment = {}
    for root in sorted(roots, key=lambda r: -int(sizes[r])):
        target = min(range(effective), key=loads.__getitem__)
        assignment[root] = target
        loads[target] += int(sizes[root])

    shard_of = np.full(n, BOUNDARY_SHARD, dtype=np.int32)
    for v in tree.top_down_order:
        if v in assignment:
            shard_of[v] = assignment[v]
        elif v in boundary_set:
            continue
        else:
            parent = int(tree.parent[v])
            if parent >= 0:
                shard_of[v] = shard_of[parent]
    boundary_mask = shard_of == BOUNDARY_SHARD
    chosen = int(depth[boundary_mask].max()) + 1 if boundary_mask.any() else 0

    boundary = tuple(int(v) for v in np.flatnonzero(boundary_mask))
    shard_vertices = tuple(
        tuple(int(v) for v in np.flatnonzero(shard_of == k))
        for k in range(effective)
    )
    partition = Partition(
        n=n,
        shards=effective,
        cut_depth=chosen,
        boundary=boundary,
        shard_of=shard_of,
        shard_vertices=shard_vertices,
    )
    partition.validate(graph)
    return partition


def shard_local_ids(partition: Partition, shard: int) -> Tuple[np.ndarray, List[int]]:
    """Global→local and local→global id maps for one shard graph.

    Local ids enumerate the shard's interior vertices (sorted) followed
    by the full boundary (sorted), so every shard places boundary
    vertex ``b_j`` at local id ``len(interior) + j``.
    """
    to_global = list(partition.shard_vertices[shard]) + list(partition.boundary)
    to_local = np.full(partition.n, -1, dtype=np.int64)
    for local, vertex in enumerate(to_global):
        to_local[vertex] = local
    return to_local, to_global


def build_shard_graph(graph, partition: Partition, shard: int):
    """Build shard ``shard``'s graph: interior ∪ boundary, chained.

    Includes every original edge with at least one interior endpoint
    (boundary–boundary edges are excluded — they live in the overlay),
    re-labelled to local ids, plus the :data:`VIRTUAL_WEIGHT` chain
    over the boundary vertices for connectivity.  Returns the same
    flavour of graph as the input (``RoadNetwork`` in,
    ``RoadNetwork`` out; ``DiRoadNetwork`` in, ``DiRoadNetwork`` out).
    """
    to_local, to_global = shard_local_ids(partition, shard)
    interior = len(partition.shard_vertices[shard])
    size = len(to_global)
    directed = hasattr(graph, "arcs")
    if directed:
        shard_graph = type(graph)(size)
        add = shard_graph.add_arc
    else:
        shard_graph = RoadNetwork(size)
        add = shard_graph.add_edge
    for u, v, w in _iter_edges(graph):
        lu, lv = int(to_local[u]), int(to_local[v])
        if lu < 0 or lv < 0:
            continue
        if lu >= interior and lv >= interior:
            continue  # boundary-boundary: overlay-owned
        add(lu, lv, w)
    has = shard_graph.has_arc if directed else shard_graph.has_edge
    for j in range(len(partition.boundary) - 1):
        a, b = interior + j, interior + j + 1
        if not has(a, b):
            add(a, b, VIRTUAL_WEIGHT)
        if directed and not has(b, a):
            add(b, a, VIRTUAL_WEIGHT)
    return shard_graph


def route_update(partition: Partition, edge: Tuple[int, int]) -> int:
    """Owning shard for an edge update, or :data:`BOUNDARY_SHARD`.

    Boundary–boundary edges belong to the coordinator's overlay; every
    other edge has at least one interior endpoint and (by the separator
    invariant) a unique owning shard.
    """
    u, v = edge
    su, sv = partition.shard(u), partition.shard(v)
    if su == BOUNDARY_SHARD and sv == BOUNDARY_SHARD:
        return BOUNDARY_SHARD
    if su == BOUNDARY_SHARD:
        return sv
    if sv == BOUNDARY_SHARD:
        return su
    if su != sv:
        raise ReproError(f"edge ({u}, {v}) crosses shard interiors {su}/{sv}")
    return su


def split_updates(
    partition: Partition, updates: Sequence[Tuple[Tuple[int, int], float]]
) -> Tuple[Dict[int, List[Tuple[Tuple[int, int], float]]], List[Tuple[Tuple[int, int], float]]]:
    """Fan an update batch out: per-shard batches plus overlay updates."""
    per_shard: Dict[int, List[Tuple[Tuple[int, int], float]]] = {}
    overlay: List[Tuple[Tuple[int, int], float]] = []
    for (u, v), w in updates:
        if w != float("inf") and w >= MAX_REAL_WEIGHT:
            raise ReproError(
                f"update weight {w} for edge ({u}, {v}) exceeds "
                f"MAX_REAL_WEIGHT; the fleet reserves weights >= 2**40"
            )
        shard = route_update(partition, (u, v))
        if shard == BOUNDARY_SHARD:
            overlay.append(((u, v), w))
        else:
            per_shard.setdefault(shard, []).append(((u, v), w))
    return per_shard, overlay
