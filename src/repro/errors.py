"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph operation received invalid input (unknown vertex, bad weight,
    duplicate edge, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation requiring a connected graph was given a disconnected one.

    Both CH and H2H (and the tree decomposition underlying H2H) assume the
    road network is connected, matching the paper's setting.
    """


class OrderingError(ReproError):
    """A vertex ordering is malformed (not a permutation of the vertices)."""


class IndexError_(ReproError):
    """An oracle index is inconsistent with the graph it claims to index."""


class UpdateError(ReproError):
    """An update batch is malformed (unknown edge, negative weight, or a
    mixed-direction batch handed to a single-direction algorithm)."""


class QueryError(ReproError):
    """A distance query referenced an unknown vertex."""


class IntegrityError(ReproError):
    """Stored or in-memory index state failed an integrity check.

    Raised when a persisted archive is truncated, unreadable or fails its
    embedded checksum, and when :func:`repro.reliability.verify_index`
    finds an index entry that disagrees with the graph it claims to
    index.
    """


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent oracle.

    Raised by the write-ahead log and :class:`repro.reliability.ReliableStore`
    when the journal is corrupt beyond a torn tail or the snapshot/WAL
    pair cannot be replayed into a usable index.
    """
