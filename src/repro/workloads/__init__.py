"""Update and query workload generators matching the paper's protocols."""

from repro.workloads.queries import estimate_max_distance, query_groups
from repro.workloads.updates import (
    increase_batch,
    mixed_batch,
    restore_batch,
    sample_edges,
)

__all__ = [
    "estimate_max_distance",
    "increase_batch",
    "mixed_batch",
    "query_groups",
    "restore_batch",
    "sample_edges",
]
