"""Distance-stratified query workloads (Exp-3).

Following [49] (and the paper's Exp-3): estimate the network's maximum
pairwise distance ``d_max``, then build query groups ``Q_1 .. Q_10``
such that the pairs in ``Q_i`` have distances in
``[2^(i-11) * d_max, 2^(i-10) * d_max)`` — each group twice as far apart
as the previous one.  CH query time grows with distance (its two upward
searches meet higher in the hierarchy); H2H's does not, which is the
point of Figures 2l-2n.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.baselines.dijkstra import dijkstra
from repro.errors import QueryError
from repro.graph.graph import RoadNetwork

__all__ = ["estimate_max_distance", "query_groups"]


def estimate_max_distance(
    graph: RoadNetwork, seed: int = 0, probes: int = 4
) -> float:
    """Estimate ``d_max`` by repeated farthest-vertex sweeps.

    The classic double-sweep lower bound: run Dijkstra from a random
    vertex, jump to the farthest vertex found, repeat.  Exact diameters
    are unnecessary here — the groups only need a consistent yardstick.
    """
    if graph.n == 0:
        raise QueryError("cannot estimate distances on an empty graph")
    rng = random.Random(seed)
    start = rng.randrange(graph.n)
    best = 0.0
    for _ in range(probes):
        dist = dijkstra(graph, start)
        far = max(
            (v for v in range(graph.n) if dist[v] != float("inf")),
            key=dist.__getitem__,
        )
        if dist[far] <= best:
            break
        best = dist[far]
        start = far
    return best


def query_groups(
    graph: RoadNetwork,
    queries_per_group: int = 100,
    seed: int = 0,
    groups: int = 10,
    max_attempts_factor: int = 400,
) -> Dict[int, List[Tuple[int, int]]]:
    """Build the stratified groups ``Q_1 .. Q_groups``.

    Sampling strategy: run single-source Dijkstra from random sources
    and bin the (source, target) pairs by distance range until every
    group is full (or the attempt budget runs out — tiny networks may
    not have enough very-distant pairs, in which case distant groups
    come back short; callers should skip empty groups).

    Returns
    -------
    dict group index (1-based) -> list of (s, t) pairs.
    """
    d_max = estimate_max_distance(graph, seed)
    rng = random.Random(seed + 1)
    buckets: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(1, groups + 1)}
    lo_bounds = {i: 2.0 ** (i - groups - 1) * d_max for i in buckets}
    hi_bounds = {i: 2.0 ** (i - groups) * d_max for i in buckets}

    attempts = 0
    max_attempts = max_attempts_factor
    while attempts < max_attempts and any(
        len(pairs) < queries_per_group for pairs in buckets.values()
    ):
        attempts += 1
        s = rng.randrange(graph.n)
        dist = dijkstra(graph, s)
        order = list(range(graph.n))
        rng.shuffle(order)
        for t in order:
            d = dist[t]
            if t == s or d == float("inf"):
                continue
            for i in buckets:
                if len(buckets[i]) < queries_per_group and lo_bounds[i] <= d < hi_bounds[i]:
                    buckets[i].append((s, t))
                    break
    return buckets
