"""Weight-update workload generators (Exp-1, Exp-2, Exp-4, Exp-7).

The paper's update protocol: sample edges uniformly at random, multiply
their weights by a factor (2.0 in Exp-1/2/7; ``i + 1`` for group ``i``
in Exp-4) to simulate the onset of congestion, then *restore* the
original weights to simulate recovery.  The increase batch exercises
DCH+/IncH2H+, the restore batch DCH-/IncH2H-.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import UpdateError
from repro.graph.graph import RoadNetwork, WeightUpdate

__all__ = ["sample_edges", "increase_batch", "restore_batch", "mixed_batch"]

Edge = Tuple[int, int, float]


def sample_edges(
    graph: RoadNetwork,
    count: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Edge]:
    """Uniformly sample *count* distinct edges as ``(u, v, weight)``.

    Sampling draws from *rng* when given — callers that thread one
    seeded :class:`random.Random` through a whole run (the benchmark
    suite, ``repro serve-bench``) get reproducible *sequences* of
    batches, not just one reproducible batch — and otherwise from a
    fresh ``random.Random(seed)``.

    Raises
    ------
    UpdateError
        If *count* exceeds the number of edges.
    """
    edges = list(graph.edges())
    if count > len(edges):
        raise UpdateError(
            f"cannot sample {count} edges from a graph with {len(edges)}"
        )
    if rng is None:
        rng = random.Random(seed)
    return rng.sample(edges, count)


def increase_batch(edges: Sequence[Edge], factor: float = 2.0) -> List[WeightUpdate]:
    """The congestion batch: each sampled edge's weight times *factor*.

    Raises
    ------
    UpdateError
        If *factor* < 1 (that would be a decrease).
    """
    if factor < 1.0:
        raise UpdateError(f"increase factor must be >= 1, got {factor}")
    return [((u, v), w * factor) for u, v, w in edges]


def restore_batch(edges: Sequence[Edge]) -> List[WeightUpdate]:
    """The recovery batch: each sampled edge back to its original weight."""
    return [((u, v), float(w)) for u, v, w in edges]


def mixed_batch(
    graph: RoadNetwork,
    count: int,
    seed: int = 0,
    factor_up: float = 2.0,
    factor_down: float = 0.5,
    rng: Optional[random.Random] = None,
) -> List[WeightUpdate]:
    """A half-increase / half-decrease batch (stress tests, examples).

    Pass *rng* to draw from a shared seeded stream (see
    :func:`sample_edges`).
    """
    edges = sample_edges(graph, count, seed, rng=rng)
    half = len(edges) // 2
    batch = increase_batch(edges[:half], factor_up)
    batch += [((u, v), w * factor_down) for u, v, w in edges[half:]]
    return batch
