"""The minimum degree heuristic ordering.

Following the paper (Section 2, after Algorithm 1) and [39], contraction
orders are produced by the *minimum degree heuristic* [12]: repeatedly
pick the vertex with the fewest uncontracted neighbors, contract it (make
its remaining neighbors a clique), and continue.  The heuristic is weight
independent, so the shortcut set it induces is stable under weight
updates — the property all incremental algorithms in this library rely
on.

The elimination performed here is purely structural; weights are computed
later by :func:`repro.ch.indexing.ch_indexing`.  The fill edges produced
during elimination are exactly the shortcuts of the eventual shortcut
graph, so callers that need both can reuse :func:`eliminate` directly.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

from repro.errors import DisconnectedGraphError
from repro.graph.graph import RoadNetwork
from repro.order.ordering import Ordering

__all__ = ["minimum_degree_ordering", "eliminate"]


def eliminate(graph: RoadNetwork) -> Tuple[Ordering, List[Tuple[int, int]]]:
    """Run minimum-degree elimination; return the ordering and fill edges.

    Returns
    -------
    (ordering, fill):
        *ordering* is the contraction order; *fill* lists the edges
        (canonical ``(u, v)`` with ``u < v``) added during elimination,
        i.e. the shortcuts that are **not** original edges.

    Notes
    -----
    Ties are broken by vertex id, making the ordering deterministic.  The
    heap uses lazy deletion: stale ``(degree, v)`` entries are skipped
    when the recorded degree disagrees with the current one.
    """
    n = graph.n
    adjacency: List[Set[int]] = [set(graph.neighbors(v)) for v in range(n)]
    heap: List[Tuple[int, int]] = [(len(adjacency[v]), v) for v in range(n)]
    heapq.heapify(heap)
    contracted = [False] * n
    order: List[int] = []
    fill: List[Tuple[int, int]] = []

    while heap:
        degree, u = heapq.heappop(heap)
        if contracted[u] or degree != len(adjacency[u]):
            continue
        contracted[u] = True
        order.append(u)
        neighbors = [v for v in adjacency[u] if not contracted[v]]
        # Make the remaining neighbors a clique (the fill of this step).
        for i, v in enumerate(neighbors):
            adj_v = adjacency[v]
            adj_v.discard(u)
            for w in neighbors[i + 1 :]:
                if w not in adj_v:
                    adj_v.add(w)
                    adjacency[w].add(v)
                    fill.append((v, w) if v < w else (w, v))
            heapq.heappush(heap, (len(adj_v), v))
        adjacency[u] = set()

    return Ordering(order), fill


def minimum_degree_ordering(graph: RoadNetwork, require_connected: bool = True) -> Ordering:
    """The minimum-degree-heuristic contraction order of *graph*.

    Parameters
    ----------
    graph:
        The road network; must be connected unless *require_connected* is
        False (CH tolerates disconnection, H2H's tree decomposition does
        not).

    Raises
    ------
    DisconnectedGraphError
        If *require_connected* and the graph is disconnected.
    """
    if require_connected and not graph.is_connected():
        raise DisconnectedGraphError(
            "minimum_degree_ordering requires a connected graph; "
            f"found {len(graph.connected_components())} components"
        )
    ordering, _ = eliminate(graph)
    return ordering
