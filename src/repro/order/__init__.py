"""Vertex orderings (contraction orders) for CH and H2H."""

from repro.order.min_degree import minimum_degree_ordering
from repro.order.ordering import Ordering, degree_ordering, random_ordering

__all__ = [
    "Ordering",
    "degree_ordering",
    "minimum_degree_ordering",
    "random_ordering",
]
