"""The :class:`Ordering` type and simple ordering heuristics.

A total order ``pi`` over the vertices drives everything in CH and H2H:
``pi(v)`` is the *rank* of ``v``; vertices are contracted in ascending
rank; shortcuts connect each vertex to higher-ranked vertices; and the
H2H tree decomposition's root is the highest-ranked vertex.

Crucially (Section 2, "Incremental CH"), the orderings used here are
**weight independent**: they look only at graph structure, never at edge
weights.  This is what keeps the shortcut *set* fixed under weight
updates, so that CHANGED consists purely of weight changes.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import OrderingError
from repro.graph.graph import RoadNetwork

__all__ = ["Ordering", "degree_ordering", "random_ordering"]


class Ordering:
    """A total order over dense vertex ids.

    ``order[i]`` is the vertex with rank ``i`` (contracted ``i``-th);
    ``rank[v]`` is the rank of vertex ``v``.  Higher rank means contracted
    later, i.e. higher in the hierarchy; the paper writes ``pi(v)`` for
    ``rank[v]``.

    Example
    -------
    >>> pi = Ordering([2, 0, 1])
    >>> pi.rank[2], pi.rank[0], pi.rank[1]
    (0, 1, 2)
    >>> pi.top()
    1
    """

    __slots__ = ("order", "rank")

    def __init__(self, order: Sequence[int]) -> None:
        order = list(order)
        n = len(order)
        rank = [-1] * n
        for position, v in enumerate(order):
            if not 0 <= v < n or rank[v] != -1:
                raise OrderingError(
                    f"order is not a permutation of 0..{n - 1}: "
                    f"vertex {v} at position {position}"
                )
            rank[v] = position
        self.order: List[int] = order
        self.rank: List[int] = rank

    def __len__(self) -> int:
        return len(self.order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ordering):
            return NotImplemented
        return self.order == other.order

    def __repr__(self) -> str:
        return f"Ordering(n={len(self.order)})"

    def top(self) -> int:
        """The highest-ranked vertex (root of the H2H tree decomposition)."""
        if not self.order:
            raise OrderingError("ordering over an empty vertex set has no top")
        return self.order[-1]

    def higher(self, u: int, v: int) -> bool:
        """True if ``pi(u) > pi(v)``."""
        return self.rank[u] > self.rank[v]


def degree_ordering(graph: RoadNetwork) -> Ordering:
    """Order vertices by *static* degree, ascending (ablation baseline).

    Unlike the minimum degree heuristic this never updates degrees during
    elimination, so it produces denser fill; the ordering-ablation
    benchmark quantifies how much worse the resulting index is.
    """
    order = sorted(graph.vertices(), key=lambda v: (graph.degree(v), v))
    return Ordering(order)


def random_ordering(graph: RoadNetwork, seed: int = 0) -> Ordering:
    """A uniformly random ordering (worst-case ablation baseline)."""
    order = list(graph.vertices())
    random.Random(seed).shuffle(order)
    return Ordering(order)
