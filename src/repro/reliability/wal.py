"""Write-ahead update journal for crash-safe oracle maintenance.

Snapshotting a large H2H index after every update batch would cost more
than the incremental maintenance it protects.  Instead the store keeps a
**write-ahead log**: each accepted batch is appended (and fsynced) to a
line-oriented journal *before* it is considered durable; a process that
dies between snapshots recovers by loading the last good snapshot and
replaying the journaled batches through DCH / IncH2H — which are
deterministic, so the replayed index matches the pre-crash one entry
for entry.

Record format — one line per batch::

    <crc32 of body, 8 hex chars> <body JSON>\\n

where the body is ``{"seq": <int>, "updates": [[u, v, w], ...]}`` with
sorted keys and no whitespace, so the checksum is reproducible.  The
only corruption a crash can cause under this append-fsync discipline is
a *torn tail* (a partially written final line); :meth:`WriteAheadLog.replay`
silently drops exactly that, while a bad record anywhere *before* the
tail means real corruption and raises :class:`RecoveryError`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import List, NamedTuple, Sequence, Union

from repro.errors import RecoveryError
from repro.graph.graph import WeightUpdate

__all__ = ["WalRecord", "WriteAheadLog"]

PathLike = Union[str, "os.PathLike[str]"]


class WalRecord(NamedTuple):
    """One journaled batch: its sequence number and the updates (DESIGN.md §4a)."""

    seq: int
    updates: List[WeightUpdate]


def _encode(seq: int, updates: Sequence[WeightUpdate]) -> str:
    body = json.dumps(
        {"seq": seq, "updates": [[u, v, w] for (u, v), w in updates]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{zlib.crc32(body.encode('utf-8')):08x} {body}\n"


def _decode(line: str) -> WalRecord:
    """Parse one journal line; raises ``ValueError`` on any damage."""
    crc_text, _, body = line.rstrip("\n").partition(" ")
    if not body:
        raise ValueError("record has no body")
    if int(crc_text, 16) != zlib.crc32(body.encode("utf-8")):
        raise ValueError("record checksum mismatch")
    record = json.loads(body)
    updates = [((int(u), int(v)), float(w)) for u, v, w in record["updates"]]
    return WalRecord(seq=int(record["seq"]), updates=updates)


class WriteAheadLog:
    """An append-only, checksummed journal of update batches (DESIGN.md §4a).

    Example
    -------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "wal.jsonl")
    >>> wal = WriteAheadLog(path)
    >>> wal.append([((0, 1), 5.0)])
    0
    >>> [rec.updates for rec in wal.replay()]
    [[((0, 1), 5.0)]]
    """

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        self._next_seq = 0
        if os.path.exists(self.path):
            records = self.replay()
            if records:
                self._next_seq = records[-1].seq + 1

    def append(self, updates: Sequence[WeightUpdate]) -> int:
        """Durably append one batch; returns its sequence number.

        The line is flushed and fsynced before returning, so once this
        method returns the batch survives a crash.
        """
        seq = self._next_seq
        line = _encode(seq, updates)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._next_seq = seq + 1
        return seq

    def replay(self) -> List[WalRecord]:
        """All intact records, in append order.

        A damaged *final* line is treated as a torn write from a crash
        mid-append and dropped; damage anywhere else (or a sequence-number
        gap) cannot be explained by a crash and raises
        :class:`RecoveryError`.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        records: List[WalRecord] = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = _decode(line)
            except (ValueError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    break  # torn tail: the crash interrupted this append
                raise RecoveryError(
                    f"write-ahead log {self.path} is corrupt at record "
                    f"{i}: {exc}"
                ) from exc
            if records and record.seq != records[-1].seq + 1:
                raise RecoveryError(
                    f"write-ahead log {self.path} has a sequence gap: "
                    f"{records[-1].seq} followed by {record.seq}"
                )
            records.append(record)
        return records

    def reset(self) -> None:
        """Empty the journal (called right after a successful snapshot,
        whose state now subsumes every journaled batch)."""
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self.replay())

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path!r}, next_seq={self._next_seq})"
