"""Deterministic fault injection for testing the reliability layer.

Reliability code is only as good as the failures it has actually been
exercised against, so the test battery drives every recovery path with
a seeded :class:`FaultInjector` that can

* make an oracle's ``apply`` / ``rebuild`` raise (:meth:`fail_next` +
  :meth:`wrap_oracle`), modelling a maintenance step dying mid-flight;
* truncate a snapshot file (:meth:`truncate_file`), modelling a crash
  racing a non-atomic writer or a half-copied archive;
* flip bytes inside an archive (:meth:`corrupt_file`), modelling disk /
  transfer corruption.

Everything is driven by one ``random.Random(seed)``, so a failing test
reproduces exactly.  Injected failures raise :class:`InjectedFault`,
which derives from :class:`ReproError` — the same class of error the
production code paths must survive.
"""

from __future__ import annotations

import os
import random
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ReproError

__all__ = ["DEFERRAL_LABELS", "FaultInjector", "FaultyOracle", "InjectedFault"]

PathLike = Union[str, "os.PathLike[str]"]

#: The :meth:`FaultInjector.check` labels wired into the deferred
#: maintenance path (``repro.reliability.degrade``):
#:
#: * ``"defer"``   — just before a sub-threshold batch is parked in the
#:   journal;
#: * ``"promote"`` — just before the journal is folded into an exact
#:   batch because it breached its own depth/age watermark;
#: * ``"catchup"`` — just before a load-subsided catch-up fold.
#:
#: An injected fault at any of these models a process crash at that
#: point; crash recovery goes through :class:`ReliableStore`, whose WAL
#: already holds every accepted batch — replay is idempotent (absolute
#: weight assignments), so no deferred delta is lost or double-applied
#: (``tests/test_degrade.py``).
DEFERRAL_LABELS = ("defer", "promote", "catchup")


class InjectedFault(ReproError):
    """A failure deliberately raised by a :class:`FaultInjector` (DESIGN.md §4a)."""


class FaultInjector:
    """A seeded source of failures, file truncation and bit rot (DESIGN.md §4a).

    Parameters
    ----------
    seed:
        Seeds the internal RNG; equal seeds inject identical faults.
    failure_rates:
        Optional ``{label: probability}`` map for random (but seeded)
        failures at :meth:`check` sites; deterministic one-shot faults
        are armed with :meth:`fail_next` instead.
    """

    def __init__(
        self,
        seed: int = 0,
        failure_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._rates = dict(failure_rates or {})
        self._armed: Dict[str, int] = {}
        #: Every fault injected so far, as ``(kind, detail)`` pairs.
        self.log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Call-site failures
    # ------------------------------------------------------------------
    def fail_next(self, label: str = "apply", count: int = 1) -> None:
        """Arm the next *count* :meth:`check` calls at *label* to raise."""
        self._armed[label] = self._armed.get(label, 0) + count

    def check(self, label: str = "apply") -> None:
        """Raise :class:`InjectedFault` if a fault is due at *label*."""
        if self._armed.get(label, 0) > 0:
            self._armed[label] -= 1
            self.log.append(("fail", label))
            raise InjectedFault(f"injected {label} failure")
        rate = self._rates.get(label, 0.0)
        if rate > 0.0 and self._rng.random() < rate:
            self.log.append(("fail", label))
            raise InjectedFault(f"injected random {label} failure")

    def wrap_oracle(self, oracle) -> "FaultyOracle":
        """An oracle proxy whose ``apply`` / ``rebuild`` pass through
        :meth:`check` (labels ``"apply"`` / ``"rebuild"``) first."""
        return FaultyOracle(oracle, self)

    # ------------------------------------------------------------------
    # File-level damage
    # ------------------------------------------------------------------
    def truncate_file(
        self, path: PathLike, keep_fraction: float = 0.5
    ) -> int:
        """Chop a file down to ``keep_fraction`` of its size; returns the
        new size.  Models a crash mid-write / a half-copied snapshot."""
        path = os.fspath(path)
        size = os.path.getsize(path)
        keep = int(size * keep_fraction)
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        self.log.append(("truncate", f"{path} {size}->{keep}"))
        return keep

    def corrupt_file(
        self, path: PathLike, nbytes: int = 64, skip_header: int = 0
    ) -> List[int]:
        """Flip *nbytes* randomly chosen bytes of a file (never to their
        original value); returns the damaged offsets.  Models silent
        disk or transfer corruption."""
        path = os.fspath(path)
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        lo = min(skip_header, max(len(blob) - 1, 0))
        offsets = sorted(
            self._rng.sample(range(lo, len(blob)), min(nbytes, len(blob) - lo))
        )
        for offset in offsets:
            blob[offset] ^= self._rng.randint(1, 255)
        with open(path, "wb") as handle:
            handle.write(blob)
        self.log.append(("corrupt", f"{path} offsets={offsets[:8]}..."))
        return offsets


class FaultyOracle:
    """A :class:`DistanceOracle` proxy (DESIGN.md §4a) that injects faults before
    maintenance calls — the test battery's stand-in for a flaky
    production maintenance step.

    Queries (``distance``) are passed straight through: the point of the
    reliability layer is that *maintenance* failures must never poison
    *answers*.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def graph(self):
        return self._inner.graph

    @property
    def index(self):
        return self._inner.index

    @property
    def inner(self):
        """The wrapped oracle."""
        return self._inner

    def distance(self, s: int, t: int) -> float:
        return self._inner.distance(s, t)

    def apply(self, updates):
        self._injector.check("apply")
        return self._inner.apply(updates)

    def rebuild(self) -> None:
        self._injector.check("rebuild")
        self._inner.rebuild()
