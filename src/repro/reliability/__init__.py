"""Reliability layer: the oracle stack hardened for always-on serving.

The paper's deployment story is a long-lived oracle absorbing an endless
stream of weight-update batches without ever rebuilding; this package
supplies everything that story needs to survive contact with real
hardware:

* :mod:`~repro.reliability.transactions` — all-or-nothing update
  application (:func:`atomic_apply`), so graph and index can never
  diverge;
* :mod:`~repro.reliability.wal` — a checksummed write-ahead journal of
  accepted batches (:class:`WriteAheadLog`);
* :mod:`~repro.reliability.store` — atomic snapshots + WAL replay
  (:class:`ReliableStore`), recovering the exact pre-crash index;
* :mod:`~repro.reliability.verify` — integrity sweeps
  (:func:`verify_index`) cross-checking every stored weight / support /
  distance entry against the equations that define it;
* :mod:`~repro.reliability.resilient` — :class:`ResilientOracle`,
  which degrades to exact Dijkstra answers and self-heals when the
  index fails;
* :mod:`~repro.reliability.degrade` — the bounded-error rung between
  healthy and fallback (:class:`DeferredMaintenance`,
  :class:`DegradePolicy`, :class:`OracleState`): sub-threshold weight
  changes are parked in a journal and answers carry a tracked
  max-stretch guarantee ``ε`` (``docs/degraded-mode.md``);
* :mod:`~repro.reliability.faults` — a seeded :class:`FaultInjector`
  so every one of those paths is actually exercised in tests.
"""

from repro.reliability.degrade import (
    BoundedDistance,
    DeferredMaintenance,
    DegradePolicy,
    OracleState,
    check_stretch,
)
from repro.reliability.faults import (
    DEFERRAL_LABELS,
    FaultInjector,
    FaultyOracle,
    InjectedFault,
)
from repro.reliability.resilient import ResilientOracle
from repro.reliability.store import (
    RecoveryResult,
    ReliableStore,
    graph_from_index,
)
from repro.reliability.transactions import (
    IndexSnapshot,
    atomic_apply,
    cow_apply,
    restore_index,
    snapshot_index,
    validate_batch,
)
from repro.reliability.verify import verify_ch, verify_h2h, verify_index
from repro.reliability.wal import WalRecord, WriteAheadLog

__all__ = [
    "DEFERRAL_LABELS",
    "BoundedDistance",
    "DeferredMaintenance",
    "DegradePolicy",
    "FaultInjector",
    "FaultyOracle",
    "IndexSnapshot",
    "InjectedFault",
    "OracleState",
    "RecoveryResult",
    "ReliableStore",
    "ResilientOracle",
    "WalRecord",
    "WriteAheadLog",
    "atomic_apply",
    "check_stretch",
    "cow_apply",
    "graph_from_index",
    "restore_index",
    "snapshot_index",
    "validate_batch",
    "verify_ch",
    "verify_h2h",
    "verify_index",
]
