"""Transactional update application: all-or-nothing graph + index mutation.

The maintenance algorithms (DCH / IncH2H) mutate the graph and the index
in several steps — increases first, then decreases, each touching both
structures.  An exception thrown mid-way (bad update, injected fault,
resource failure) would otherwise leave the pair *diverged*: the graph
half-updated and the index describing a network that no longer exists,
which silently corrupts every subsequent ``sd(s, t)`` answer.

:func:`atomic_apply` makes the whole batch a transaction: the affected
edge weights and the complete mutable index state are snapshotted before
the first mutation, and on any failure both are rolled back so graph and
index come out bit-identical to their pre-call state.  Snapshots use
only the public read/write faces of :class:`ShortcutGraph` /
:class:`H2HIndex`, so the rollback path exercises the same setters the
maintenance algorithms do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ch.shortcut_graph import Shortcut, ShortcutGraph
from repro.errors import UpdateError
from repro.graph.graph import RoadNetwork, WeightUpdate, canonical_edge
from repro.h2h.index import H2HIndex

__all__ = [
    "IndexSnapshot",
    "atomic_apply",
    "cow_apply",
    "snapshot_index",
    "restore_index",
    "validate_batch",
]


@dataclass
class IndexSnapshot:
    """The complete mutable state of a CH or H2H index at one instant
    (DESIGN.md §4a: transactional updates).

    Structure (shortcut set, tree decomposition) is weight independent
    and never mutated by maintenance, so weights / supports / witnesses
    / edge weights — plus the ``dis`` / ``sup`` matrices for H2H — pin
    the index down exactly.

    For a columnar index the same state is captured as flat page copies
    in ``pages`` (one ``ndarray.copy()`` per page) and the four dict
    fields stay empty — the content is identical, the walk is not.
    """

    weights: Dict[Shortcut, float]
    supports: Dict[Shortcut, int]
    vias: Dict[Shortcut, Optional[int]]
    edge_weights: Dict[Shortcut, float]
    dis: Optional[np.ndarray] = None
    sup_matrix: Optional[np.ndarray] = None
    pages: Optional[Dict[str, np.ndarray]] = None


def _sc_of(index) -> ShortcutGraph:
    return index.sc if isinstance(index, H2HIndex) else index


def snapshot_index(index) -> IndexSnapshot:
    """Capture the full mutable state of a :class:`ShortcutGraph` or
    :class:`H2HIndex` (cheap dict/array copies; O(index size)).

    A columnar shortcut graph exposes ``page_snapshot()``; its flat page
    copies replace the per-shortcut dict walk (same state, no Python
    loop over shortcuts)."""
    sc = _sc_of(index)
    take_pages = getattr(sc, "page_snapshot", None)
    if take_pages is not None:
        snap = IndexSnapshot(
            weights={}, supports={}, vias={}, edge_weights={},
            pages=take_pages(),
        )
    else:
        snap = IndexSnapshot(
            weights=sc.weight_snapshot(),
            supports=sc.support_snapshot(),
            vias=sc.via_snapshot(),
            edge_weights=sc.edge_weights(),
        )
    if isinstance(index, H2HIndex):
        snap.dis = index.dis.copy()
        snap.sup_matrix = index.sup.copy()
    return snap


def restore_index(index, snapshot: IndexSnapshot) -> None:
    """Write a snapshot back into *index*, undoing any mutation since
    :func:`snapshot_index` captured it."""
    index.prepare_write()
    sc = _sc_of(index)
    if snapshot.pages is not None:
        sc.restore_pages(snapshot.pages)
    else:
        for (u, v), w in snapshot.weights.items():
            sc.set_weight(u, v, w)
        for (u, v), sup in snapshot.supports.items():
            sc.set_support(u, v, sup)
        for (u, v), via in snapshot.vias.items():
            sc.set_via(u, v, via)
        for (u, v), w in snapshot.edge_weights.items():
            sc.set_edge_weight(u, v, w)
    if isinstance(index, H2HIndex):
        index.dis[:] = snapshot.dis
        index.sup[:] = snapshot.sup_matrix


def validate_batch(
    graph: RoadNetwork, updates: Sequence[WeightUpdate]
) -> List[Tuple[Shortcut, float]]:
    """Validate a batch against *graph* without mutating anything.

    Checks that every edge exists and every weight is a valid
    non-negative number, and returns the pre-update weight of each
    distinct edge (the data needed to roll the graph back).

    Raises
    ------
    GraphError
        If an edge is unknown or a weight is invalid.
    UpdateError
        If the same edge appears twice in the batch.
    """
    pre: List[Tuple[Shortcut, float]] = []
    seen = set()
    for (u, v), w in updates:
        key = canonical_edge(u, v)
        if key in seen:
            raise UpdateError(f"edge ({u}, {v}) appears twice in one batch")
        seen.add(key)
        pre.append((key, graph.weight(u, v)))
        RoadNetwork._check_weight(w)
    return pre


def atomic_apply(oracle, updates: Sequence[WeightUpdate]):
    """Apply a batch through *oracle* all-or-nothing.

    On success this is exactly ``oracle.apply(updates)`` (same return
    value).  On any exception the graph's edge weights and the oracle's
    index are restored to their pre-call state before the exception is
    re-raised — the graph and the index can never diverge.

    Works with any oracle exposing ``graph`` / ``apply`` (the
    :class:`repro.core.oracle.DistanceOracle` protocol); oracles with an
    ``index`` attribute (:class:`DynamicCH`, :class:`DynamicH2H`) get
    full index rollback, index-free oracles just get graph rollback.
    """
    graph = oracle.graph
    pre_edges = validate_batch(graph, updates)
    index = getattr(oracle, "index", None)
    snapshot = snapshot_index(index) if index is not None else None
    try:
        return oracle.apply(updates)
    except BaseException:
        for (u, v), w in pre_edges:
            graph.set_weight(u, v, w)
        if snapshot is not None:
            restore_index(index, snapshot)
        raise


def cow_apply(
    oracle, updates: Sequence[WeightUpdate], *, coalesce: bool = False
):
    """Copy-on-write apply: build the *next* version, never touch this one.

    Clones *oracle* (graph and index) and applies the batch to the clone
    through :func:`atomic_apply`.  With *coalesce*, the raw stream is
    first merged into its per-edge net effect against the oracle's
    current weights (:func:`repro.perf.coalesce.coalesce_updates`; keyed
    per ordered arc for directed oracles) — the deduplicated batch also
    passes :func:`validate_batch`'s duplicate check, so repeated-edge
    streams become applicable here.  Returns ``(next_oracle, report)``;
    *oracle* itself is left bit-identical, so readers holding it keep
    answering consistently the whole time the update is in flight.  This
    is the maintenance primitive behind :mod:`repro.serve`'s epoch
    snapshots: build next version copy-on-write, then publish it with an
    atomic epoch swap.

    Any oracle exposing ``clone`` / ``graph`` / ``apply`` works
    (:class:`DynamicCH`, :class:`DynamicH2H`, their directed mirrors,
    :class:`DijkstraOracle`).  Undirected oracles go through
    :func:`atomic_apply`; directed indexes (whose arcs the undirected
    snapshot machinery cannot express) apply directly — on failure the
    half-mutated clone is simply never returned, so all-or-nothing holds
    either way.
    """
    clone = getattr(oracle, "clone", None)
    if clone is None:
        raise UpdateError(
            f"{type(oracle).__name__} does not support copy-on-write "
            "(no clone() method)"
        )
    superseded = dropped = 0
    if coalesce:
        from repro.perf.coalesce import coalesce_updates

        graph = oracle.graph
        batch = coalesce_updates(
            updates, graph.weight, directed=hasattr(graph, "arcs")
        )
        updates = batch.updates
        superseded, dropped = batch.superseded, batch.dropped
    next_oracle = clone()
    index = getattr(next_oracle, "index", None)
    if index is None or isinstance(index, (ShortcutGraph, H2HIndex)):
        report = atomic_apply(next_oracle, updates)
    else:
        report = next_oracle.apply(updates)
    if coalesce and report is not None and hasattr(report, "superseded"):
        # Coalescing happened here, not inside the facade (which ran
        # with its own coalesce off) — surface the counters on the
        # report so per-apply consumers (the serve layer's obs
        # registry) see them.  docs/performance.md § Coalescing.
        report.superseded = superseded
        report.dropped = dropped
    return next_oracle, report
