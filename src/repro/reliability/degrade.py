"""Bounded-error degraded maintenance: defer small deltas, bound the stretch.

Under heavy update traffic, exact maintenance is the bottleneck the
paper's boundedness analysis predicts (batched IncH2H sustains roughly
an order of magnitude fewer updates/s than DCH, and both are finite).
This module supplies the middle rung of the degradation ladder between
"exact index" and "fall back to Dijkstra":

* **threshold-c classification** — each coalesced update batch is split
  by :func:`repro.perf.coalesce.split_by_threshold`: deltas whose
  multiplicative deviation from the served weight exceeds ``c`` are
  applied exactly, the rest are *parked* in a journal of pending
  deltas (the Fig. 2f congestion-threshold machinery of
  ``graph/traffic.py``, repurposed for maintenance admission);
* **ε accounting** — the journal maintains the accumulated error bound
  ``ε = max over parked edges of max(w_true/w_served, w_served/w_true) - 1``.
  Because every parked edge deviates by at most ``c``, ``ε <= c - 1``
  always holds by construction;
* **bounded-stretch guarantee** — a served distance ``d`` satisfies
  ``d_exact / (1 + ε) <= d <= d_exact * (1 + ε)`` (proof: every path's
  served weight is within a factor ``1 + ε`` of its true weight edge by
  edge, and ``min`` over paths preserves multiplicative envelopes).
  :class:`BoundedDistance` stamps answers with the bound and
  :func:`check_stretch` re-checks it differentially;
* **catch-up** — :meth:`DeferredMaintenance.fold` merges the whole
  journal into the next exact batch (one coalesced catch-up apply), so
  deferred deltas are never lost, only delayed.

The two consumers are :class:`~repro.reliability.ResilientOracle`
(state ``DEGRADED_BOUNDED`` between ``HEALTHY`` and ``FALLBACK``) and
:class:`~repro.serve.server.DistanceServer` (overload-aware admission
control driven by :class:`DegradePolicy` watermarks).  See
``docs/degraded-mode.md`` for the state machine and the ε proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ReproError
from repro.graph.graph import WeightUpdate
from repro.obs import names
from repro.obs.trace import span
from repro.perf.coalesce import split_by_threshold

__all__ = [
    "BoundedDistance",
    "DeferredDelta",
    "DeferredMaintenance",
    "DegradePolicy",
    "OracleState",
    "check_stretch",
]


class OracleState(Enum):
    """The degradation ladder (docs/degraded-mode.md).

    ``HEALTHY`` — the index is exact; answers carry no error.
    ``DEGRADED_BOUNDED`` — sub-threshold deltas are parked; answers are
    served from the index with a tracked max-stretch guarantee ``ε``.
    ``FALLBACK`` — the index is unusable; answers come from ground-truth
    Dijkstra on the current graph (exact, slow).
    """

    HEALTHY = "healthy"
    DEGRADED_BOUNDED = "degraded_bounded"
    FALLBACK = "fallback"


class BoundedDistance(NamedTuple):
    """A served distance stamped with its max-stretch guarantee.

    ``distance`` is the answer the (possibly boundedly stale) index
    gave; ``max_stretch`` is the ``ε`` in force when it was served.
    The guarantee, proven by construction (see the module docstring):

        ``exact / (1 + ε) <= distance <= exact * (1 + ε)``
    """

    distance: float
    max_stretch: float

    @property
    def lower(self) -> float:
        """The smallest the exact distance can be."""
        return self.distance / (1.0 + self.max_stretch)

    @property
    def upper(self) -> float:
        """The largest the exact distance can be."""
        return self.distance * (1.0 + self.max_stretch)

    @property
    def exact(self) -> bool:
        """True when the answer carries no error (``ε == 0``)."""
        return self.max_stretch == 0.0


def check_stretch(
    served: float, exact: float, max_stretch: float, rel_slack: float = 1e-9
) -> bool:
    """Differentially re-check one stamped answer against ground truth.

    True when *served* lies within the ``(1 + max_stretch)`` envelope of
    *exact* in both directions (with a tiny relative *rel_slack* for
    float accumulation).  Infinite distances must agree exactly — no
    finite stretch factor bridges reachability.
    """
    if math.isinf(served) or math.isinf(exact):
        return served == exact
    bound = (1.0 + max_stretch) * (1.0 + rel_slack)
    return served <= exact * bound and exact <= served * bound


@dataclass(frozen=True)
class DegradePolicy:
    """Knobs of the degraded tier and the server's admission control.

    Attributes
    ----------
    threshold_c:
        Fig. 2f threshold: deltas whose multiplicative deviation from
        the served weight stays within ``c`` may be deferred, so the
        served stretch ``ε`` never exceeds ``c - 1``.
    high_watermark / low_watermark:
        Pending-batch depth (offered, not yet applied) at which
        :class:`~repro.serve.server.DistanceServer` enters degraded
        mode, and the depth at which load counts as subsided and a
        catch-up apply folds the journal back in (hysteresis:
        ``low < high``).
    max_batch_age_s:
        Oldest queued batch age that triggers degraded mode even when
        the depth watermark has not been reached.
    max_deferred:
        Parked-edge count beyond which the journal is promoted into the
        next exact batch regardless of load.
    max_deferred_applies:
        Parked-delta age, in applies, beyond which the journal is
        promoted (bounds how stale any one answer can get).
    """

    threshold_c: float = 1.25
    high_watermark: int = 8
    low_watermark: int = 2
    max_batch_age_s: float = 0.5
    max_deferred: int = 4096
    max_deferred_applies: int = 256

    def __post_init__(self) -> None:
        if self.threshold_c <= 1.0:
            raise ReproError(
                f"threshold_c must be > 1, got {self.threshold_c}"
            )
        if not 0 <= self.low_watermark < self.high_watermark:
            raise ReproError(
                f"watermarks must satisfy 0 <= low < high, got "
                f"low={self.low_watermark} high={self.high_watermark}"
            )


@dataclass
class DeferredDelta:
    """One parked weight change: the journal entry for one edge."""

    edge: Tuple[int, int]  #: the update's endpoint pair, as reported
    target: float  #: the true (latest reported) weight
    served: float  #: the weight the index still reflects
    born: int  #: value of the apply counter when first parked

    @property
    def deviation(self) -> float:
        """``max(target/served, served/target)`` — the stretch factor."""
        return max(self.target / self.served, self.served / self.target)


class DeferredMaintenance:
    """The deferral journal + ε accounting behind ``DEGRADED_BOUNDED``.

    One instance belongs to one oracle/server; it is deliberately
    oblivious to *how* updates are applied — callers classify a net
    batch, :meth:`park` the minor part, :meth:`note_exact` the major
    part, and eventually :meth:`fold` the journal into an exact batch.

    Parameters
    ----------
    policy:
        The :class:`DegradePolicy` thresholds/watermarks in force.
    directed:
        Key journal entries per ordered arc instead of per canonical
        undirected edge (directed oracles).
    injector:
        Optional :class:`~repro.reliability.FaultInjector`; the
        deferral path checks the labels ``defer`` / ``promote`` /
        ``catchup`` so tests can crash it at every stage.
    """

    def __init__(
        self,
        policy: Optional[DegradePolicy] = None,
        *,
        directed: bool = False,
        injector=None,
    ) -> None:
        self.policy = policy if policy is not None else DegradePolicy()
        self.directed = directed
        self._injector = injector
        self._journal: Dict[Tuple[int, int], DeferredDelta] = {}
        self._applies = 0
        #: Lifetime counters by action (mirrors the obs registry).
        #: ``cancel`` counts journal entries *removed* because a later
        #: delta landed back on the served weight — not parked deltas.
        self.counters: Dict[str, int] = {
            "defer": 0, "promote": 0, "catchup": 0, "cancel": 0
        }

    # ------------------------------------------------------------------
    # Classification and journal maintenance
    # ------------------------------------------------------------------
    def _key(self, u: int, v: int) -> Tuple[int, int]:
        return (u, v) if self.directed or u < v else (v, u)

    def _check(self, label: str) -> None:
        if self._injector is not None:
            self._injector.check(label)

    def classify(
        self,
        updates: Sequence[WeightUpdate],
        weight_of: Callable[[int, int], float],
    ) -> Tuple[List[WeightUpdate], List[WeightUpdate]]:
        """Split a net batch into *(exact, deferrable)* at threshold-c.

        *weight_of* must report the weight the **served index** still
        reflects (for both consumers that is the oracle's own graph,
        which in degraded mode deliberately lags reality for parked
        edges).
        """
        with span(names.SPAN_DEGRADE_CLASSIFY) as sp:
            major, minor = split_by_threshold(
                updates, weight_of, self.policy.threshold_c
            )
            if sp.active:
                sp.set(
                    batch=len(updates),
                    exact=len(major),
                    deferrable=len(minor),
                    pending=len(self._journal),
                )
        return major, minor

    def park(
        self,
        minor: Sequence[WeightUpdate],
        weight_of: Callable[[int, int], float],
    ) -> Tuple[int, int]:
        """Journal sub-threshold deltas (last write per edge wins).

        A delta that lands back on the served weight cancels the edge's
        entry — the sequential application would end where it started.
        Returns ``(parked, cancelled)``: edges whose entry was added or
        updated, and edges whose entry was removed by such a revert.
        Only the former count as ``defer`` actions; cancellations are
        tracked under ``cancel``.
        """
        if not minor:
            return 0, 0
        self._check("defer")
        parked = cancelled = 0
        for (u, v), w in minor:
            key = self._key(u, v)
            entry = self._journal.get(key)
            served = entry.served if entry is not None else weight_of(u, v)
            if w == served:
                if entry is not None:
                    del self._journal[key]
                    cancelled += 1
                continue
            self._journal[key] = DeferredDelta(
                edge=(u, v),
                target=w,
                served=served,
                born=entry.born if entry is not None else self._applies,
            )
            parked += 1
        self.counters["defer"] += parked
        self.counters["cancel"] += cancelled
        return parked, cancelled

    def effective_weight(
        self, weight_of: Callable[[int, int], float]
    ) -> Callable[[int, int], float]:
        """*weight_of* overlaid with the journal's parked targets.

        Returns an accessor reporting the *effective true* weight of an
        edge: the parked target when the edge has a journal entry, the
        served weight otherwise.  Coalescing an incoming batch must use
        this accessor, **not** the served weight — against the served
        weight, an update that reverts a parked edge back to its served
        value looks like a net no-op and is dropped before it can reach
        :meth:`park`'s cancellation, leaving the journal's superseded
        target to win the catch-up fold (a last-write-wins violation).
        """
        if not self._journal:
            return weight_of

        def effective(u: int, v: int) -> float:
            entry = self._journal.get(self._key(u, v))
            return entry.target if entry is not None else weight_of(u, v)

        return effective

    def note_exact(self, exact: Iterable[WeightUpdate]) -> None:
        """Drop journal entries superseded by an exactly-applied batch."""
        for (u, v), _w in exact:
            self._journal.pop(self._key(u, v), None)

    def tick(self) -> None:
        """Advance the apply counter (ages every parked delta by one)."""
        self._applies += 1

    # ------------------------------------------------------------------
    # Catch-up
    # ------------------------------------------------------------------
    def should_promote(self) -> bool:
        """True when the journal itself breaches a watermark (depth or
        age) and must fold into the next exact batch regardless of
        load."""
        if not self._journal:
            return False
        policy = self.policy
        return (
            len(self._journal) > policy.max_deferred
            or self.oldest_age > policy.max_deferred_applies
        )

    def fold(
        self,
        exact: Sequence[WeightUpdate] = (),
        *,
        reason: str = "catchup",
    ) -> List[WeightUpdate]:
        """Merge the whole journal into *exact* and clear it.

        The result is one coalesced catch-up batch — unique per edge,
        with entries of *exact* (newer) winning over parked targets
        (older).  *reason* is the fault-injection label checked first
        (``catchup`` or ``promote``); an injected crash here leaves the
        journal untouched, so no deferred delta can be lost.
        """
        self._check(reason)
        merged: Dict[Tuple[int, int], WeightUpdate] = {
            key: (entry.edge, entry.target)
            for key, entry in self._journal.items()
        }
        for (u, v), w in exact:
            merged[self._key(u, v)] = ((u, v), w)
        self.counters[reason] = (
            self.counters.get(reason, 0) + len(self._journal)
        )
        self._journal.clear()
        return list(merged.values())

    def clear(self) -> List[WeightUpdate]:
        """Drain the journal without applying (the fallback flush):
        returns the pending true-weight assignments and forgets them."""
        pending = self.pending_updates()
        self._journal.clear()
        return pending

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Parked edges right now."""
        return len(self._journal)

    @property
    def oldest_age(self) -> int:
        """Applies since the oldest parked delta was first parked."""
        if not self._journal:
            return 0
        return self._applies - min(
            entry.born for entry in self._journal.values()
        )

    @property
    def epsilon(self) -> float:
        """The accumulated error bound ε (0.0 with an empty journal).

        By construction ``ε <= threshold_c - 1``: every parked delta
        passed the threshold test against the weight the index still
        serves.
        """
        if not self._journal:
            return 0.0
        return max(
            entry.deviation for entry in self._journal.values()
        ) - 1.0

    def pending_updates(self) -> List[WeightUpdate]:
        """The journal as a weight-update batch (true target weights)."""
        return [
            (entry.edge, entry.target) for entry in self._journal.values()
        ]

    def stats(self) -> dict:
        """Journal state as one dict (for reports and benchmarks)."""
        return {
            "pending": self.pending,
            "oldest_age": self.oldest_age,
            "epsilon": self.epsilon,
            "threshold_c": self.policy.threshold_c,
            "counters": dict(self.counters),
        }

    def __repr__(self) -> str:
        return (
            f"DeferredMaintenance(pending={self.pending}, "
            f"epsilon={self.epsilon:.4f}, c={self.policy.threshold_c})"
        )
