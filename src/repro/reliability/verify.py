"""Integrity verification: cross-check an index against its graph.

A long-lived oracle absorbs thousands of update batches between
rebuilds; a single bit of silent corruption (bad RAM, a buggy
maintenance step, a tampered archive) then poisons every answer until
someone notices.  This module makes "noticing" cheap and explicit:

* :func:`verify_ch` re-derives Equation (<>) for shortcuts and checks
  stored weight / support / witness against it, plus symmetry and —
  when the road network is supplied — agreement between the index's
  ``phi(e, G)`` copy and the graph's actual edge weights;
* :func:`verify_h2h` does the same for the underlying CH and then
  re-derives Equation (*) for super-shortcut entries;
* :func:`verify_index` dispatches on the index (or oracle) type.

All three run **exhaustively** by default and **sampled** when given
``sample=k`` — the production mode, where a seeded random subset bounds
the cost of a background integrity sweep.  Failures raise
:class:`repro.errors.IntegrityError` naming the first bad entry.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.ch.shortcut_graph import ShortcutGraph
from repro.errors import IntegrityError
from repro.graph.graph import RoadNetwork
from repro.h2h.index import H2HIndex

__all__ = ["verify_ch", "verify_h2h", "verify_index"]


def _check_shortcut(index: ShortcutGraph, u: int, v: int) -> None:
    """One shortcut: symmetry, Equation (<>), support, witness."""
    w = index.weight(u, v)
    if index.weight(v, u) != w:
        raise IntegrityError(f"asymmetric weight on shortcut <{u}, {v}>")
    result = index.evaluate_equation(u, v)
    if result.weight != w:
        raise IntegrityError(
            f"shortcut <{u}, {v}>: stored weight {w}, "
            f"Equation (<>) gives {result.weight}"
        )
    if index.support(u, v) != result.support:
        raise IntegrityError(
            f"shortcut <{u}, {v}>: stored support {index.support(u, v)}, "
            f"actual {result.support}"
        )
    via = index.via(u, v)
    if via is None:
        if not math.isinf(w) and index.edge_weight(u, v) != w:
            raise IntegrityError(
                f"shortcut <{u}, {v}>: witness says original edge, but "
                f"phi(e, G) = {index.edge_weight(u, v)} != {w}"
            )
    else:
        if (
            not index.has_shortcut(u, via)
            or not index.has_shortcut(via, v)
            or index.weight(u, via) + index.weight(via, v) != w
        ):
            raise IntegrityError(
                f"shortcut <{u}, {v}>: witness {via} does not attain the "
                f"stored weight {w}"
            )


def _check_against_graph(index: ShortcutGraph, graph: RoadNetwork) -> None:
    """The index's edge-weight copy must mirror the graph exactly."""
    if index.n != graph.n:
        raise IntegrityError(
            f"index has {index.n} vertices, graph has {graph.n}"
        )
    finite_edges = sum(
        1 for w in index.edge_weights().values() if not math.isinf(w)
    )
    if finite_edges != graph.m:
        raise IntegrityError(
            f"index tracks {finite_edges} live edges, graph has {graph.m}"
        )
    for u, v, w in graph.edges():
        if not index.is_graph_edge(u, v):
            raise IntegrityError(
                f"graph edge ({u}, {v}) is unknown to the index"
            )
        if index.edge_weight(u, v) != w:
            raise IntegrityError(
                f"edge ({u}, {v}): graph weight {w}, index copy "
                f"{index.edge_weight(u, v)} — graph and index have diverged"
            )


def verify_ch(
    index: ShortcutGraph,
    graph: Optional[RoadNetwork] = None,
    *,
    sample: Optional[int] = None,
    seed: int = 0,
) -> int:
    """Verify a CH index; returns the number of shortcuts checked.

    With ``sample=k``, only a seeded random subset of ``k`` shortcuts is
    re-derived (the graph cross-check, which is cheap, always runs in
    full).  Raises :class:`IntegrityError` on the first inconsistency.
    """
    if graph is not None:
        _check_against_graph(index, graph)
    shortcuts = list(index.shortcuts())
    if sample is not None and sample < len(shortcuts):
        shortcuts = random.Random(seed).sample(shortcuts, sample)
    for u, v in shortcuts:
        _check_shortcut(index, u, v)
    return len(shortcuts)


def verify_h2h(
    index: H2HIndex,
    graph: Optional[RoadNetwork] = None,
    *,
    sample: Optional[int] = None,
    seed: int = 0,
) -> int:
    """Verify an H2H index (underlying CH first, then the ``dis`` /
    ``sup`` matrices); returns the number of entries checked.

    With ``sample=k``, ``k`` shortcuts and ``k`` super-shortcut entries
    are re-derived; exhaustive otherwise.
    """
    checked = verify_ch(index.sc, graph, sample=sample, seed=seed)
    depth = index.tree.depth
    entries = [
        (u, da) for u in range(index.n) for da in range(int(depth[u]))
    ]
    if sample is not None and sample < len(entries):
        entries = random.Random(seed + 1).sample(entries, sample)
    for u in range(index.n):
        if index.dis[u, int(depth[u])] != 0.0:
            raise IntegrityError(
                f"dis({u})[depth({u})] = {index.dis[u, int(depth[u])]}, "
                f"must be 0"
            )
    for u, da in entries:
        value, support = index.evaluate_entry(u, da)
        if index.dis[u, da] != value:
            raise IntegrityError(
                f"super-shortcut ({u}, depth {da}): stored distance "
                f"{index.dis[u, da]}, Equation (*) gives {value}"
            )
        if index.sup[u, da] != support:
            raise IntegrityError(
                f"super-shortcut ({u}, depth {da}): stored support "
                f"{index.sup[u, da]}, actual {support}"
            )
    return checked + len(entries)


def verify_index(
    index,
    graph: Optional[RoadNetwork] = None,
    *,
    sample: Optional[int] = None,
    seed: int = 0,
) -> int:
    """Verify any index — or any oracle exposing one via ``.index``.

    Dispatches to :func:`verify_ch` / :func:`verify_h2h`; returns the
    number of entries checked, raises :class:`IntegrityError` on the
    first inconsistency.
    """
    if not isinstance(index, (ShortcutGraph, H2HIndex)):
        inner = getattr(index, "index", None)
        if inner is None:
            raise IntegrityError(
                f"cannot verify object of type {type(index).__name__}"
            )
        if graph is None:
            graph = getattr(index, "graph", None)
        index = inner
    if isinstance(index, H2HIndex):
        return verify_h2h(index, graph, sample=sample, seed=seed)
    return verify_ch(index, graph, sample=sample, seed=seed)
