"""Graceful degradation: a self-healing :class:`DistanceOracle` wrapper.

The index oracles (CH / H2H) are fast but stateful; the Dijkstra
baseline is slow but stateless and therefore *cannot* be corrupted by a
failed maintenance step.  :class:`ResilientOracle` composes the two so a
fault costs latency, never correctness:

* **updates** are applied through :func:`atomic_apply`, so a failing
  maintenance step rolls graph *and* index back as one transaction; the
  batch is then committed to the graph alone (the graph's own
  ``apply_batch`` is atomic) — the network is always current even when
  the index is not;
* **degraded mode** — after a maintenance failure, a query-time index
  error, or a failed integrity check, queries fall back to ground-truth
  Dijkstra on the current graph, so answers stay exact;
* **self-healing** — while degraded, each call attempts one
  ``rebuild()`` of the primary (bounded by ``max_rebuild_attempts`` per
  episode, optionally re-verified before trusting), amortising the
  recovery over the call path instead of blocking any single caller for
  unbounded retries;
* **durability** — with a :class:`ReliableStore` attached, accepted
  batches are journaled before being applied and a checkpoint is taken
  whenever the oracle (re)enters healthy state;
* **bounded degradation** — with a :class:`DegradePolicy` attached, a
  third rung appears between healthy and fallback: sub-threshold weight
  changes are parked in a :class:`DeferredMaintenance` journal and
  answers are served from the boundedly-stale index with a tracked
  max-stretch guarantee ``ε <= threshold_c - 1``
  (``docs/degraded-mode.md``).  On any transition to the Dijkstra
  fallback the journal is flushed into the graph first, so fallback
  answers stay *exact* — the stretch bound only ever applies to the
  fast path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.oracle import DijkstraOracle
from repro.errors import IntegrityError, ReproError
from repro.graph.graph import RoadNetwork, WeightUpdate
from repro.obs import names
from repro.obs.trace import span
from repro.reliability.degrade import (
    BoundedDistance,
    DeferredMaintenance,
    DegradePolicy,
    OracleState,
)
from repro.reliability.transactions import atomic_apply, validate_batch
from repro.reliability.verify import verify_index

__all__ = ["ResilientOracle"]


class ResilientOracle:
    """A :class:`DistanceOracle` (DESIGN.md §4a: graceful degradation) that
    survives maintenance failures and
    index corruption by degrading to exact Dijkstra answers while it
    heals itself.

    Parameters
    ----------
    primary:
        The fast oracle (:class:`DynamicCH` / :class:`DynamicH2H`, or
        any :class:`DistanceOracle` with an ``index`` attribute).
    store:
        Optional :class:`ReliableStore`; accepted batches are journaled
        to it and checkpoints taken on recovery.
    max_rebuild_attempts:
        Rebuild budget per degradation episode; once exhausted the
        oracle stays on the Dijkstra fallback until :meth:`rebuild` or
        :meth:`reset` is called explicitly.
    verify_sample:
        When set, a successful rebuild is only trusted after a sampled
        :func:`verify_index` pass of this many entries.
    degrade:
        ``None`` (default) keeps the two-state behaviour.  A
        :class:`DegradePolicy` (or ``True`` for the default policy)
        enables the ``DEGRADED_BOUNDED`` rung: batches are split at the
        policy's threshold-c, the sub-threshold part is parked in a
        deferral journal, and :attr:`epsilon` /
        :meth:`distance_bounded` expose the resulting stretch bound.
    injector:
        Optional :class:`FaultInjector` threaded into the deferral
        journal (labels ``defer`` / ``promote`` / ``catchup``).  An
        injected fault models a process crash at that point: it
        propagates to the caller, and recovery goes through the
        attached :class:`ReliableStore` (whose WAL already holds every
        accepted batch, so no deferred delta is lost or double-applied).
    """

    def __init__(
        self,
        primary,
        *,
        store=None,
        max_rebuild_attempts: int = 3,
        verify_sample: Optional[int] = None,
        degrade=None,
        injector=None,
    ) -> None:
        self._primary = primary
        self._graph: RoadNetwork = primary.graph
        self._fallback = DijkstraOracle(self._graph)
        self._store = store
        self._max_attempts = max_rebuild_attempts
        self._attempts_left = max_rebuild_attempts
        self._verify_sample = verify_sample
        if degrade is None or degrade is False:
            self._deferral: Optional[DeferredMaintenance] = None
        else:
            policy = degrade if isinstance(degrade, DegradePolicy) else DegradePolicy()
            self._deferral = DeferredMaintenance(
                policy,
                directed=hasattr(self._graph, "arcs"),
                injector=injector,
            )
        self.degraded = False
        #: Chronological ``(event, detail)`` record of failures/recoveries.
        self.events: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # DistanceOracle protocol
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RoadNetwork:
        """The road network — always current, even in degraded mode."""
        return self._graph

    @property
    def primary(self):
        """The wrapped fast oracle."""
        return self._primary

    @property
    def fallback(self) -> DijkstraOracle:
        """The index-free ground-truth oracle used while degraded."""
        return self._fallback

    @property
    def deferral(self) -> Optional[DeferredMaintenance]:
        """The deferral journal, or ``None`` without a degrade policy."""
        return self._deferral

    @property
    def state(self) -> OracleState:
        """Where on the degradation ladder this oracle currently sits."""
        if self.degraded:
            return OracleState.FALLBACK
        if self._deferral is not None and self._deferral.pending:
            return OracleState.DEGRADED_BOUNDED
        return OracleState.HEALTHY

    @property
    def epsilon(self) -> float:
        """The max-stretch bound currently in force (0.0 ⇒ exact)."""
        if self._deferral is None:
            return 0.0
        return self._deferral.epsilon

    def distance(self, s: int, t: int) -> float:
        """Shortest distance — exact in ``HEALTHY`` and ``FALLBACK``,
        within a factor ``1 + epsilon`` of exact in ``DEGRADED_BOUNDED``
        (use :meth:`distance_bounded` to get the stamp)."""
        if self.degraded:
            self._try_rebuild()
        if not self.degraded:
            try:
                return self._primary.distance(s, t)
            except ReproError as exc:
                self._degrade("query", exc)
        return self._fallback.distance(s, t)

    def distance_bounded(self, s: int, t: int) -> BoundedDistance:
        """:meth:`distance` stamped with the ε bound it was served under.

        The guarantee (proven by construction, re-checked differentially
        by the hypothesis suite and ``repro verify --bounded``):
        ``exact / (1 + ε) <= distance <= exact * (1 + ε)``.
        """
        return BoundedDistance(self.distance(s, t), self.epsilon)

    def apply(self, updates: Sequence[WeightUpdate]):
        """Accept a batch; the graph always advances, the index only if
        its maintenance succeeds as a whole transaction.

        A malformed batch (unknown edge, bad weight, duplicate edge) is
        the caller's error: it raises before anything is journaled or
        mutated.  A well-formed batch is journaled first (write-ahead),
        then applied; once this method returns the batch is durable and
        visible, even if index maintenance failed along the way.
        """
        validate_batch(self._graph, updates)
        if self._store is not None:
            self._store.log(updates)
        if self.degraded:
            self._graph.apply_batch(updates)
            self._try_rebuild()
            return None
        if self._deferral is not None:
            return self._apply_bounded(updates)
        try:
            report = atomic_apply(self._primary, updates)
        except ReproError as exc:
            # Graph and index were rolled back together; re-commit the
            # batch to the graph alone and serve from the fallback.
            self._graph.apply_batch(updates)
            self._degrade("apply", exc)
            self._try_rebuild()
            return None
        return report

    def _apply_bounded(self, updates: Sequence[WeightUpdate]):
        """Threshold-c admission: park the sub-threshold part of the
        batch, apply the rest exactly (folding the journal back in when
        it breaches its own depth/age watermark)."""
        deferral = self._deferral
        major, minor = deferral.classify(updates, self._graph.weight)
        deferral.park(minor, self._graph.weight)
        if deferral.should_promote():
            to_apply = deferral.fold(major, reason="promote")
        else:
            # An exact write supersedes any parked delta on its edge.
            deferral.note_exact(major)
            to_apply = major
        deferral.tick()
        if not to_apply:
            return None
        try:
            report = atomic_apply(self._primary, to_apply)
        except ReproError as exc:
            self._graph.apply_batch(to_apply)
            self._degrade("apply", exc)  # flushes the journal first
            self._try_rebuild()
            return None
        return report

    def catch_up(self):
        """Fold the whole deferral journal into one exact catch-up
        apply, returning the oracle to ``HEALTHY`` (ε back to 0).

        No-op (returns ``None``) when nothing is parked.  On success
        the attached store is checkpointed — the index is exact again,
        so the WAL can be truncated.  A maintenance failure during the
        catch-up degrades to the Dijkstra fallback with the journal
        flushed into the graph, so answers stay exact either way.
        """
        if self._deferral is None or not self._deferral.pending:
            return None
        pending = self._deferral.pending
        batch = self._deferral.fold(reason="catchup")
        try:
            report = atomic_apply(self._primary, batch)
        except ReproError as exc:
            self._graph.apply_batch(batch)
            self._degrade("catchup", exc)
            self._try_rebuild()
            return None
        self.events.append(("caught-up", f"{pending} deferred delta(s)"))
        if self._store is not None:
            self._store.checkpoint(self._primary)
        return report

    def rebuild(self) -> None:
        """Force a full rebuild now and reset the retry budget."""
        if self._deferral is not None and self._deferral.pending:
            # Bring the graph to the true weights so the rebuilt index
            # reflects reality, not the served (stale) state.
            self._graph.apply_batch(self._deferral.clear())
        self._attempts_left = self._max_attempts
        self._primary.rebuild()
        self._mark_healthy("manual rebuild")

    # ------------------------------------------------------------------
    # Health management
    # ------------------------------------------------------------------
    def check_integrity(
        self, sample: Optional[int] = None, seed: int = 0
    ) -> bool:
        """Run an integrity sweep of the primary index against the graph;
        degrade (and start self-healing) if it fails.

        Returns True when the sweep found nothing wrong; False when
        corruption was detected (even if the piggybacked rebuild already
        healed it) or the oracle was already degraded.
        """
        if self.degraded:
            return False
        try:
            verify_index(self._primary.index, self._graph,
                         sample=sample, seed=seed)
        except IntegrityError as exc:
            self._degrade("verify", exc)
            self._try_rebuild()
            return False
        return True

    def reset(self) -> None:
        """Refill the rebuild budget (e.g. after an operator fixed the
        underlying cause) without forcing a rebuild right now."""
        self._attempts_left = self._max_attempts

    def _degrade(self, event: str, exc: Exception) -> None:
        with span(names.SPAN_RESILIENT_FALLBACK) as sp:
            flushed = 0
            if self._deferral is not None and self._deferral.pending:
                # The fallback runs Dijkstra on the graph: flush the parked
                # true weights into it so fallback answers are exact rather
                # than inheriting the bounded staleness.
                batch = self._deferral.clear()
                flushed = len(batch)
                self._graph.apply_batch(batch)
            self.degraded = True
            self.events.append((f"degraded:{event}", str(exc)))
            if sp.active:
                sp.set(event=event, error=str(exc)[:200], flushed=flushed)

    def _mark_healthy(self, detail: str) -> None:
        self.degraded = False
        self._attempts_left = self._max_attempts
        self.events.append(("recovered", detail))
        if self._store is not None:
            self._store.checkpoint(self._primary)

    def _try_rebuild(self) -> None:
        """One bounded self-healing attempt, piggybacked on a call."""
        if not self.degraded or self._attempts_left <= 0:
            return
        self._attempts_left -= 1
        try:
            self._primary.rebuild()
        except ReproError as exc:
            self.events.append(("rebuild-failed", str(exc)))
            return
        if self._verify_rebuild():
            self._mark_healthy("rebuild")

    def _verify_rebuild(self) -> bool:
        if self._verify_sample is None:
            return True
        try:
            verify_index(self._primary.index, self._graph,
                         sample=self._verify_sample)
        except IntegrityError as exc:
            self.events.append(("rebuild-unverified", str(exc)))
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"ResilientOracle({type(self._primary).__name__}, "
            f"{self.state.value}, attempts_left={self._attempts_left})"
        )
