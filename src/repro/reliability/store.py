"""Crash-safe oracle storage: atomic snapshots + write-ahead journal.

A :class:`ReliableStore` owns one directory::

    store/
      snapshot.npz   last checkpointed index (atomic write, checksummed)
      wal.jsonl      update batches accepted since that checkpoint
      meta.json      {"kind": "ch" | "h2h"}

The serving protocol is

1. ``checkpoint(oracle)`` after building (and periodically after);
2. ``log(batch)`` **before** applying each accepted batch in memory;
3. after a crash, ``recover()`` — load the snapshot (integrity checked),
   rebuild the oracle around it without re-indexing, and replay the
   journal through the real maintenance algorithms (DCH / IncH2H).

Because maintenance is deterministic, replay reproduces the pre-crash
index entry for entry — the same guarantee the persistence round-trip
tests establish for snapshots alone, extended across crashes.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.dynamic import DynamicCH, DynamicH2H
from repro.errors import IntegrityError, RecoveryError, ReproError
from repro.graph.graph import RoadNetwork, WeightUpdate
from repro.h2h.index import H2HIndex
from repro.persist import load_ch, load_h2h, save_ch, save_h2h
from repro.reliability.wal import WriteAheadLog

__all__ = ["RecoveryResult", "ReliableStore", "graph_from_index"]

PathLike = Union[str, "os.PathLike[str]"]


def graph_from_index(sc) -> RoadNetwork:
    """Reconstruct the road network from an index's edge-weight copy.

    The index tracks ``phi(e, G)`` for every original edge (``inf``
    marking a deleted road), which pins the graph down exactly — so a
    recovered oracle needs no separate graph file.
    """
    return RoadNetwork.from_edges(
        sc.n,
        ((u, v, w) for (u, v), w in sorted(sc.edge_weights().items())
         if not math.isinf(w)),
    )


@dataclass
class RecoveryResult:
    """What :meth:`ReliableStore.recover` reconstructed (DESIGN.md §4a)."""

    oracle: object
    kind: str
    replayed_batches: int


class ReliableStore:
    """Snapshot + WAL persistence for a dynamic oracle (DESIGN.md §4a).

    Example
    -------
    >>> import tempfile
    >>> from repro.core.dynamic import DynamicCH
    >>> from repro.graph.generators import grid_network
    >>> store = ReliableStore(tempfile.mkdtemp())
    >>> oracle = DynamicCH(grid_network(3, 3, seed=1))
    >>> store.checkpoint(oracle)
    >>> batch = [((0, 1), oracle.graph.weight(0, 1) + 1.0)]
    >>> store.log(batch); _ = oracle.apply(batch)
    0
    >>> recovered = store.recover()
    >>> recovered.oracle.graph == oracle.graph
    True
    """

    SNAPSHOT = "snapshot.npz"
    WAL = "wal.jsonl"
    META = "meta.json"

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.wal = WriteAheadLog(self.wal_path)

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, self.SNAPSHOT)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.root, self.WAL)

    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, self.META)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def checkpoint(self, oracle) -> None:
        """Atomically snapshot *oracle*'s index, then clear the journal.

        Order matters for crash safety: the snapshot is published (via
        ``os.replace``) before the WAL is truncated, so a crash between
        the two merely replays batches the snapshot already contains —
        replaying an already-applied weight assignment is idempotent.
        """
        index = oracle.index
        if isinstance(index, H2HIndex):
            kind = "h2h"
            save_h2h(index, self.snapshot_path)
        else:
            kind = "ch"
            save_ch(index, self.snapshot_path)
        self._write_meta(kind)
        self.wal.reset()

    def log(self, updates: Sequence[WeightUpdate]) -> int:
        """Journal one accepted batch; returns its sequence number."""
        return self.wal.append(updates)

    def _write_meta(self, kind: str) -> None:
        tmp = self.meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"kind": kind, "format": 1}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.meta_path)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _read_kind(self) -> str:
        try:
            with open(self.meta_path, "r", encoding="utf-8") as handle:
                return json.load(handle)["kind"]
        except FileNotFoundError:
            return "unknown"
        except (json.JSONDecodeError, KeyError, TypeError):
            return "unknown"

    def recover(self) -> RecoveryResult:
        """Reconstruct the oracle from the last snapshot plus the journal.

        Raises
        ------
        RecoveryError
            If the snapshot is missing/corrupt, the journal is corrupt
            beyond a torn tail, or a journaled batch fails to replay.
        """
        kind = self._read_kind()
        try:
            if kind == "h2h":
                index = load_h2h(self.snapshot_path)
            elif kind == "ch":
                index = load_ch(self.snapshot_path)
            else:
                try:
                    index = load_h2h(self.snapshot_path)
                    kind = "h2h"
                except ReproError:
                    index = load_ch(self.snapshot_path)
                    kind = "ch"
        except IntegrityError as exc:
            raise RecoveryError(
                f"cannot recover from {self.root}: snapshot unusable "
                f"({exc})"
            ) from exc
        sc = index.sc if kind == "h2h" else index
        graph = graph_from_index(sc)
        if kind == "h2h":
            oracle = DynamicH2H.from_index(graph, index)
        else:
            oracle = DynamicCH.from_index(graph, index)
        records = self.wal.replay()
        for record in records:
            try:
                oracle.apply(record.updates)
            except ReproError as exc:
                raise RecoveryError(
                    f"cannot recover from {self.root}: replay of batch "
                    f"{record.seq} failed ({exc})"
                ) from exc
        return RecoveryResult(
            oracle=oracle, kind=kind, replayed_batches=len(records)
        )

    def __repr__(self) -> str:
        return f"ReliableStore({self.root!r})"
