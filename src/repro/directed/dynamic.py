"""Dynamic oracle facades for directed networks.

Mirrors :mod:`repro.core.dynamic` for the directed extension: build
once, then interleave asymmetric distance queries with per-arc weight
updates; mixed batches are split and dispatched to directed DCH /
directed IncH2H.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.dynamic import resolve_backend
from repro.directed.ch import directed_ch_distance, directed_ch_indexing
from repro.directed.dch import (
    ArcUpdate,
    directed_dch_decrease,
    directed_dch_increase,
)
from repro.directed.graph import DiRoadNetwork
from repro.directed.h2h import (
    directed_h2h_distance,
    directed_h2h_indexing,
    directed_inch2h_decrease,
    directed_inch2h_increase,
)
from repro.errors import UpdateError
from repro.order.ordering import Ordering
from repro.perf.coalesce import coalesce_updates
from repro.utils.counters import OpCounter

__all__ = ["DynamicDiCH", "DynamicDiH2H", "DirectedUpdateReport"]


@dataclass
class DirectedUpdateReport:
    """What one directed :meth:`apply` call did."""

    increases: int = 0
    decreases: int = 0
    changed_shortcut_arcs: List = field(default_factory=list)
    changed_super_shortcuts: List = field(default_factory=list)
    ops: dict = field(default_factory=dict)
    superseded: int = 0
    dropped: int = 0


def _split(
    graph: DiRoadNetwork, updates: Sequence[ArcUpdate]
) -> Tuple[List[ArcUpdate], List[ArcUpdate]]:
    increases: List[ArcUpdate] = []
    decreases: List[ArcUpdate] = []
    seen = set()
    for (u, v), w in updates:
        if (u, v) in seen:
            raise UpdateError(f"arc ({u} -> {v}) appears twice in one batch")
        seen.add((u, v))
        old = graph.weight(u, v)
        if w > old:
            increases.append(((u, v), w))
        elif w < old:
            decreases.append(((u, v), w))
    return increases, decreases


class DynamicDiCH:
    """A directed contraction hierarchy under live arc-weight updates.

    Example
    -------
    >>> g = DiRoadNetwork(3)
    >>> g.add_arc(0, 1, 2.0); g.add_arc(1, 2, 2.0); g.add_arc(2, 0, 9.0)
    >>> oracle = DynamicDiCH(g)
    >>> oracle.distance(0, 2)
    4.0
    """

    def __init__(
        self,
        graph: DiRoadNetwork,
        ordering: Optional[Ordering] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self.counter = OpCounter()
        self.index = directed_ch_indexing(graph, ordering, self.counter)
        if resolve_backend(backend) == "columnar":
            from repro.columnar import ColumnarDirectedShortcutGraph

            self.index = ColumnarDirectedShortcutGraph.from_directed(self.index)

    @property
    def backend(self) -> str:
        """The representation backing the index (``dict``/``columnar``)."""
        return self.index.backend

    def clone(self) -> "DynamicDiCH":
        """An independent copy: same answers, disjoint mutable state."""
        dup = DynamicDiCH.__new__(DynamicDiCH)
        dup._graph = self._graph.copy()
        dup.counter = OpCounter()
        dup.index = self.index.clone()
        return dup

    @property
    def graph(self) -> DiRoadNetwork:
        """The directed network in its current state."""
        return self._graph

    def distance(self, s: int, t: int) -> float:
        """``sd(s -> t)`` under current weights."""
        return directed_ch_distance(self.index, s, t, self.counter)

    def apply(
        self, updates: Sequence[ArcUpdate], *, coalesce: bool = False
    ) -> DirectedUpdateReport:
        """Apply a (possibly mixed) batch of arc-weight updates.

        With *coalesce*, the raw stream is first merged per ordered arc
        (last write wins) so each direction of a road coalesces
        independently; final state matches per-update application.
        """
        superseded = dropped = 0
        if coalesce:
            batch = coalesce_updates(updates, self._graph.weight, directed=True)
            updates = batch.updates
            superseded, dropped = batch.superseded, batch.dropped
        increases, decreases = _split(self._graph, updates)
        ops = OpCounter()
        report = DirectedUpdateReport(
            increases=len(increases),
            decreases=len(decreases),
            superseded=superseded,
            dropped=dropped,
        )
        if increases:
            for (u, v), w in increases:
                self._graph.set_weight(u, v, w)
            report.changed_shortcut_arcs += directed_dch_increase(
                self.index, increases, ops
            )
        if decreases:
            for (u, v), w in decreases:
                self._graph.set_weight(u, v, w)
            report.changed_shortcut_arcs += directed_dch_decrease(
                self.index, decreases, ops
            )
        report.ops = ops.as_dict()
        self.counter.merge(ops)
        return report

    def rebuild(self) -> None:
        """Recompute the index from the current network; the backend is
        preserved."""
        backend = self.backend
        self.index = directed_ch_indexing(
            self._graph, self.index.ordering, self.counter
        )
        if backend == "columnar":
            from repro.columnar import ColumnarDirectedShortcutGraph

            self.index = ColumnarDirectedShortcutGraph.from_directed(self.index)


class DynamicDiH2H:
    """A directed H2H oracle under live arc-weight updates."""

    def __init__(
        self,
        graph: DiRoadNetwork,
        ordering: Optional[Ordering] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self.counter = OpCounter()
        self.index = directed_h2h_indexing(graph, ordering, self.counter)
        if resolve_backend(backend) == "columnar":
            from repro.columnar import ColumnarDirectedH2HIndex

            self.index = ColumnarDirectedH2HIndex.from_index(self.index)

    @property
    def backend(self) -> str:
        """The representation backing the index (``dict``/``columnar``)."""
        return self.index.backend

    def clone(self) -> "DynamicDiH2H":
        """An independent copy: same answers, disjoint mutable state."""
        dup = DynamicDiH2H.__new__(DynamicDiH2H)
        dup._graph = self._graph.copy()
        dup.counter = OpCounter()
        dup.index = self.index.clone()
        return dup

    @property
    def graph(self) -> DiRoadNetwork:
        """The directed network in its current state."""
        return self._graph

    def distance(self, s: int, t: int) -> float:
        """``sd(s -> t)`` read from the directed labels."""
        return directed_h2h_distance(self.index, s, t, self.counter)

    def apply(
        self, updates: Sequence[ArcUpdate], *, coalesce: bool = False
    ) -> DirectedUpdateReport:
        """Apply a (possibly mixed) batch of arc-weight updates.

        With *coalesce*, the raw stream is first merged per ordered arc
        (last write wins) so each direction of a road coalesces
        independently; final state matches per-update application.
        """
        superseded = dropped = 0
        if coalesce:
            batch = coalesce_updates(updates, self._graph.weight, directed=True)
            updates = batch.updates
            superseded, dropped = batch.superseded, batch.dropped
        increases, decreases = _split(self._graph, updates)
        ops = OpCounter()
        report = DirectedUpdateReport(
            increases=len(increases),
            decreases=len(decreases),
            superseded=superseded,
            dropped=dropped,
        )
        if increases:
            for (u, v), w in increases:
                self._graph.set_weight(u, v, w)
            report.changed_super_shortcuts += directed_inch2h_increase(
                self.index, increases, ops
            )
        if decreases:
            for (u, v), w in decreases:
                self._graph.set_weight(u, v, w)
            report.changed_super_shortcuts += directed_inch2h_decrease(
                self.index, decreases, ops
            )
        report.ops = ops.as_dict()
        self.counter.merge(ops)
        return report

    def rebuild(self) -> None:
        """Recompute the index from the current network; the backend is
        preserved."""
        backend = self.backend
        self.index = directed_h2h_indexing(
            self._graph, self.index.sc.ordering, self.counter
        )
        if backend == "columnar":
            from repro.columnar import ColumnarDirectedH2HIndex

            self.index = ColumnarDirectedH2HIndex.from_index(self.index)
