"""Directed road networks (the extension noted in Section 2).

The paper presents CH/H2H and their maintenance for undirected graphs
"for ease of exposition, emphasizing that our results and algorithms
can be extended to the directed case".  This subpackage carries out
that extension for the CH side of the stack:

* :class:`~repro.directed.graph.DiRoadNetwork` — arc-weighted directed
  graphs (one-way streets, asymmetric transit times);
* :func:`~repro.directed.ch.directed_ch_indexing` — the contraction
  hierarchy over per-direction shortcut weights (the shortcut *set*
  stays symmetric — it is the elimination fill of the symmetrized
  graph, weight independent as before — while each shortcut carries a
  forward and a backward weight);
* :func:`~repro.directed.ch.directed_ch_distance` — forward-upward /
  backward-upward bidirectional query;
* :func:`~repro.directed.dch.directed_dch_increase` /
  :func:`~repro.directed.dch.directed_dch_decrease` — DCH per
  direction, with per-direction supports.
"""

from repro.directed.ch import (
    DirectedShortcutGraph,
    directed_ch_distance,
    directed_ch_indexing,
)
from repro.directed.dch import directed_dch_decrease, directed_dch_increase
from repro.directed.dijkstra import directed_dijkstra
from repro.directed.dynamic import DynamicDiCH, DynamicDiH2H
from repro.directed.graph import DiRoadNetwork
from repro.directed.h2h import (
    DirectedH2HIndex,
    directed_h2h_distance,
    directed_h2h_indexing,
    directed_inch2h_decrease,
    directed_inch2h_increase,
)

__all__ = [
    "DiRoadNetwork",
    "DirectedH2HIndex",
    "DirectedShortcutGraph",
    "DynamicDiCH",
    "DynamicDiH2H",
    "directed_ch_distance",
    "directed_ch_indexing",
    "directed_dch_decrease",
    "directed_dch_increase",
    "directed_dijkstra",
    "directed_h2h_distance",
    "directed_h2h_indexing",
    "directed_inch2h_decrease",
    "directed_inch2h_increase",
]
