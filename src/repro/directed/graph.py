"""Directed road networks: arc-weighted digraphs.

Real road networks have one-way streets and direction-dependent transit
times; :class:`DiRoadNetwork` models them with per-arc weights.  The
*symmetrization* of a directed network — the undirected graph with an
edge wherever at least one arc exists — determines all the weight-
independent structure (contraction order, shortcut set), exactly as in
the undirected case.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import GraphError, QueryError
from repro.graph.graph import RoadNetwork

__all__ = ["DiRoadNetwork"]


class DiRoadNetwork:
    """A directed graph with dense integer vertices and arc weights.

    Example
    -------
    >>> g = DiRoadNetwork(2)
    >>> g.add_arc(0, 1, 5.0)   # one-way street
    >>> g.has_arc(0, 1), g.has_arc(1, 0)
    (True, False)
    """

    __slots__ = ("_out", "_in", "_m")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._out: List[Dict[int, float]] = [{} for _ in range(n)]
        self._in: List[Dict[int, float]] = [{} for _ in range(n)]
        self._m = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls, n: int, arcs: Iterable[Tuple[int, int, float]]
    ) -> "DiRoadNetwork":
        """Build a network from ``(u, v, weight)`` arc triples."""
        graph = cls(n)
        for u, v, w in arcs:
            graph.add_arc(u, v, w)
        return graph

    @classmethod
    def from_undirected(
        cls, graph: RoadNetwork, asymmetry: float = 1.0
    ) -> "DiRoadNetwork":
        """Both directions of every edge; reverse scaled by *asymmetry*."""
        digraph = cls(graph.n)
        for u, v, w in graph.edges():
            digraph.add_arc(u, v, w)
            digraph.add_arc(v, u, w * asymmetry)
        return digraph

    def copy(self) -> "DiRoadNetwork":
        """An independent deep copy."""
        clone = DiRoadNetwork(self.n)
        clone._out = [dict(arcs) for arcs in self._out]
        clone._in = [dict(arcs) for arcs in self._in]
        clone._m = self._m
        return clone

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._out)

    @property
    def m(self) -> int:
        """Number of arcs."""
        return self._m

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise QueryError(f"vertex {v} out of range [0, {self.n})")

    def has_arc(self, u: int, v: int) -> bool:
        """True if arc ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def weight(self, u: int, v: int) -> float:
        """The weight of arc ``u -> v``.

        Raises
        ------
        GraphError
            If the arc does not exist.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._out[u][v]
        except KeyError:
            raise GraphError(f"arc ({u} -> {v}) does not exist") from None

    def successors(self, u: int):
        """``(v, weight)`` pairs of out-arcs of *u*."""
        self._check_vertex(u)
        return self._out[u].items()

    def predecessors(self, u: int):
        """``(v, weight)`` pairs of in-arcs of *u*."""
        self._check_vertex(u)
        return self._in[u].items()

    def arcs(self) -> Iterator[Tuple[int, int, float]]:
        """All arcs as ``(u, v, weight)``."""
        for u, out in enumerate(self._out):
            for v, w in out.items():
                yield u, v, w

    # ------------------------------------------------------------------
    @staticmethod
    def _check_weight(w: float) -> float:
        if not isinstance(w, (int, float)):
            raise GraphError(f"weight must be a number, got {type(w).__name__}")
        if w < 0 or math.isnan(w):
            raise GraphError(f"weight must be non-negative, got {w}")
        return float(w)

    def add_arc(self, u: int, v: int, weight: float) -> None:
        """Add arc ``u -> v``.

        Raises
        ------
        GraphError
            On self-loops, duplicates, or invalid weights.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop ({u}, {u}) not allowed")
        if v in self._out[u]:
            raise GraphError(f"arc ({u} -> {v}) already exists")
        w = self._check_weight(weight)
        self._out[u][v] = w
        self._in[v][u] = w
        self._m += 1

    def set_weight(self, u: int, v: int, weight: float) -> float:
        """Change the weight of arc ``u -> v``; return the old weight."""
        old = self.weight(u, v)
        w = self._check_weight(weight)
        self._out[u][v] = w
        self._in[v][u] = w
        return old

    # ------------------------------------------------------------------
    def symmetrized(self) -> RoadNetwork:
        """The undirected structure graph (min arc weight per edge).

        Carries the weight-independent structure: contraction orders and
        shortcut sets are computed on this graph.
        """
        graph = RoadNetwork(self.n)
        for u, v, w in self.arcs():
            if graph.has_edge(u, v):
                if w < graph.weight(u, v):
                    graph.set_weight(u, v, w)
            else:
                graph.add_edge(u, v, w)
        return graph

    def is_strongly_connected(self) -> bool:
        """True if every vertex reaches every other (two BFS passes)."""
        if self.n <= 1:
            return True

        def reaches_all(adjacency) -> bool:
            seen = [False] * self.n
            seen[0] = True
            stack = [0]
            count = 1
            while stack:
                u = stack.pop()
                for v in adjacency[u]:
                    if not seen[v]:
                        seen[v] = True
                        count += 1
                        stack.append(v)
            return count == self.n

        return reaches_all(self._out) and reaches_all(self._in)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiRoadNetwork):
            return NotImplemented
        return self._out == other._out

    def __repr__(self) -> str:
        return f"DiRoadNetwork(n={self.n}, m={self.m})"
