"""DCH for directed networks: per-direction incremental maintenance.

Algorithms 2 and 3 carry over with one twist: each skeleton shortcut
holds two directed weights, and the propagation step must dispatch a
changed arc to the right directed candidates.  For a popped directed
shortcut whose skeleton is ``{l, h}`` (``l`` the lower-ranked endpoint)
and each skeleton upward neighbor ``w`` of ``l``:

* the arc ``l -> h`` participates in the candidate
  ``phi(w -> l) + phi(l -> h)`` of partner arc ``w -> h``;
* the arc ``h -> l`` participates in the candidate
  ``phi(h -> l) + phi(l -> w)`` of partner arc ``h -> w``.

Priorities, supports and the decrease-pass dedup rule (skip a pair when
its other leg is still queued) all work exactly as in the undirected
implementation, applied per directed shortcut.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set, Tuple

from repro.directed.ch import Arc, DirectedShortcutGraph
from repro.errors import UpdateError
from repro.obs import names
from repro.obs.trace import span
from repro.utils.counters import OpCounter, resolve_counter
from repro.utils.heap import AddressableHeap

__all__ = ["directed_dch_increase", "directed_dch_decrease"]

#: ((tail, head), new_weight) — a directed weight update.
ArcUpdate = Tuple[Arc, float]

#: A changed directed shortcut with old and new weight.
ChangedArc = Tuple[Arc, float, float]


def _validate(
    index: DirectedShortcutGraph, updates: Sequence[ArcUpdate], direction: str
) -> None:
    seen: Set[Arc] = set()
    for (u, v), w in updates:
        if not index.is_arc(u, v):
            raise UpdateError(f"({u} -> {v}) is not an arc of G")
        if (u, v) in seen:
            raise UpdateError(f"arc ({u} -> {v}) appears twice in one batch")
        seen.add((u, v))
        if w < 0 or math.isnan(w):
            raise UpdateError(f"invalid weight {w} for arc ({u} -> {v})")
        old = index.arc_weight(u, v)
        if direction == "increase" and w < old:
            raise UpdateError(f"increase got a decrease on ({u} -> {v})")
        if direction == "decrease" and w > old:
            raise UpdateError(f"decrease got an increase on ({u} -> {v})")


def _priority(index: DirectedShortcutGraph, arc: Arc) -> Tuple[int, int, int]:
    rank = index.ordering.rank
    u, v = arc
    return (min(rank[u], rank[v]), max(rank[u], rank[v]), rank[u])


def _partners(index: DirectedShortcutGraph, arc: Arc):
    """Yield ``(other_leg, partner)`` for every candidate *arc* feeds.

    ``other_leg`` is the second directed shortcut in the candidate sum
    and ``partner`` the directed shortcut the candidate bounds.
    """
    u, v = arc
    low = index.lower_endpoint(u, v)
    if u == low:
        # arc = l -> h: candidate phi(w -> l) + phi(l -> h) for (w -> h).
        high = v
        for w_mid in index.upward(low):
            if w_mid != high and w_mid in index._w[high]:
                yield (w_mid, low), (w_mid, high)
    else:
        # arc = h -> l: candidate phi(h -> l) + phi(l -> w) for (h -> w).
        high = u
        for w_mid in index.upward(low):
            if w_mid != high and w_mid in index._w[high]:
                yield (low, w_mid), (high, w_mid)


def trace_directed_call(sp, delta: int, changed_count: int, ops, ops_before) -> None:
    """Attach batch size, |C| and per-call op counts to a directed span.

    Only called when a sink is attached; the directed variants trace the
    outer call only (no per-phase spans, no AFF/DIFF currencies — the
    change-metrics helpers are defined for the undirected index).
    """
    current = ops.as_dict()
    call_ops = {
        channel: count - ops_before.get(channel, 0)
        for channel, count in current.items()
        if count - ops_before.get(channel, 0)
    }
    sp.set(
        delta=delta,
        changed=changed_count,
        ops=call_ops,
        ops_total=sum(call_ops.values()),
    )


def directed_dch_increase(
    index: DirectedShortcutGraph,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter] = None,
) -> List[ChangedArc]:
    """DCH+ over directed shortcuts; returns the changed arcs."""
    _validate(index, updates, "increase")
    index.prepare_write()
    with span(names.SPAN_DIRECTED_DCH_INCREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops = resolve_counter(counter)
        ops_before = ops.as_dict() if sp.active else None
        queue: AddressableHeap[Arc] = AddressableHeap()

        for (u, v), w in updates:
            ops.add("delta_inspect")
            old_arc = index.arc_weight(u, v)
            if w > old_arc and not math.isinf(old_arc) and (
                old_arc == index.weight(u, v)
            ):
                sup = index.support(u, v) - 1
                index.set_support(u, v, sup)
                if sup == 0:
                    queue.push((u, v), _priority(index, (u, v)))
                    ops.add("queue_push")
            index.set_arc_weight(u, v, w)

        changed: List[ChangedArc] = []
        while queue:
            arc, _ = queue.pop()
            ops.add("queue_pop")
            u, v = arc
            old_weight = index.weight(u, v)
            if not math.isinf(old_weight):
                for (a, b), (p, q) in _partners(index, arc):
                    ops.add("scp_plus_inspect")
                    candidate = old_weight + index._w[a][b]
                    if not math.isinf(candidate) and index._w[p][q] == candidate:
                        sup = index.support(p, q) - 1
                        index.set_support(p, q, sup)
                        if sup == 0:
                            queue.push((p, q), _priority(index, (p, q)))
                            ops.add("queue_push")
            new_weight = index.recompute_arc(u, v, ops)
            if new_weight != old_weight:
                changed.append((arc, old_weight, new_weight))
        if sp.active:
            trace_directed_call(sp, len(updates), len(changed), ops, ops_before)
    return changed


def directed_dch_decrease(
    index: DirectedShortcutGraph,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter] = None,
) -> List[ChangedArc]:
    """DCH- over directed shortcuts; returns the changed arcs."""
    _validate(index, updates, "decrease")
    index.prepare_write()
    with span(names.SPAN_DIRECTED_DCH_DECREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops = resolve_counter(counter)
        ops_before = ops.as_dict() if sp.active else None
        queue: AddressableHeap[Arc] = AddressableHeap()
        original: dict = {}

        for (u, v), w in updates:
            ops.add("delta_inspect")
            old_arc = index.arc_weight(u, v)
            index.set_arc_weight(u, v, w)
            current = index.weight(u, v)
            if w < current:
                original.setdefault((u, v), current)
                index.set_weight(u, v, w)
                index.set_support(u, v, 1)
                if (u, v) not in queue:
                    queue.push((u, v), _priority(index, (u, v)))
                    ops.add("queue_push")
            elif w == current and w < old_arc and not math.isinf(w):
                index.set_support(u, v, index.support(u, v) + 1)

        while queue:
            arc, _ = queue.pop()
            ops.add("queue_pop")
            u, v = arc
            weight_e = index.weight(u, v)
            if math.isinf(weight_e):
                continue
            for (a, b), (p, q) in _partners(index, arc):
                ops.add("scp_plus_inspect")
                if (a, b) in queue:
                    continue  # the other leg's pop evaluates this candidate
                candidate = weight_e + index._w[a][b]
                current = index._w[p][q]
                if candidate < current:
                    original.setdefault((p, q), current)
                    index.set_weight(p, q, candidate)
                    index.set_support(p, q, 1)
                    if (p, q) not in queue:
                        queue.push((p, q), _priority(index, (p, q)))
                        ops.add("queue_push")
                elif candidate == current and not math.isinf(candidate):
                    index.set_support(p, q, index.support(p, q) + 1)

        changed = [
            (arc, old, index.weight(*arc))
            for arc, old in original.items()
            if index.weight(*arc) != old
        ]
        if sp.active:
            trace_directed_call(sp, len(updates), len(changed), ops, ops_before)
    return changed
