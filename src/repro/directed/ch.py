"""Directed contraction hierarchy.

The weight-independent backbone is unchanged: the contraction order and
the shortcut *set* come from the symmetrized graph, exactly as in the
undirected case (Section 2's variant).  What changes is that every
shortcut ``{u, v}`` now carries **two** weights — the shortest valley
path ``u -> v`` and ``v -> u`` — each satisfying its own directed
Equation (<>)::

    phi(u -> v) = min( phi_G(u -> v),
                       min over t in scp-  of  phi(u -> t) + phi(t -> v) )

Queries run a forward upward search from ``s`` over out-weights and a
backward upward search from ``t`` over in-weights; the answer is the
best meeting point, as in the classic directed CH [26].
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.directed.graph import DiRoadNetwork
from repro.errors import IndexError_, QueryError
from repro.order.min_degree import minimum_degree_ordering
from repro.order.ordering import Ordering
from repro.utils.counters import OpCounter, resolve_counter

__all__ = ["DirectedShortcutGraph", "directed_ch_indexing", "directed_ch_distance"]

#: A directed shortcut: the ordered pair (tail, head).
Arc = Tuple[int, int]


class DirectedShortcutGraph:
    """The directed CH index: per-direction shortcut weights + supports."""

    __slots__ = ("ordering", "_rank", "_w", "_up", "_down", "_arc_w", "_sup")

    def __init__(
        self,
        ordering: Ordering,
        weights: List[Dict[int, float]],
        arc_weights: Dict[Arc, float],
    ) -> None:
        self.ordering = ordering
        self._rank = ordering.rank
        self._w = weights  # _w[u][v] = phi(u -> v); key sets symmetric
        rank = self._rank
        self._up: List[List[int]] = [
            sorted((v for v in weights[u] if rank[v] > rank[u]),
                   key=rank.__getitem__)
            for u in range(len(weights))
        ]
        self._down: List[List[int]] = [
            sorted((v for v in weights[u] if rank[v] < rank[u]),
                   key=rank.__getitem__)
            for u in range(len(weights))
        ]
        self._arc_w = arc_weights
        self._sup: Dict[Arc, int] = {}

    def clone(self) -> "DirectedShortcutGraph":
        """An independent copy sharing the weight-independent skeleton."""
        dup = DirectedShortcutGraph.__new__(DirectedShortcutGraph)
        dup.ordering = self.ordering
        dup._rank = self._rank
        dup._w = [dict(nbrs) for nbrs in self._w]
        dup._up = self._up
        dup._down = self._down
        dup._arc_w = dict(self._arc_w)
        dup._sup = dict(self._sup)
        return dup

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Which representation backs this index (``dict`` here)."""
        return "dict"

    def prepare_write(self) -> None:
        """Maintenance pre-write hook; no-op on the dict backend."""

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._w)

    @property
    def num_shortcuts(self) -> int:
        """Number of skeleton shortcuts (each carries two weights)."""
        return sum(len(nbrs) for nbrs in self._w) // 2

    def has_shortcut(self, u: int, v: int) -> bool:
        """True if the skeleton shortcut between *u* and *v* exists."""
        return v in self._w[u]

    def weight(self, u: int, v: int) -> float:
        """``phi(u -> v)``."""
        try:
            return self._w[u][v]
        except (KeyError, IndexError):
            raise IndexError_(f"no shortcut between {u} and {v}") from None

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite ``phi(u -> v)`` (maintenance only)."""
        if v not in self._w[u]:
            raise IndexError_(f"no shortcut between {u} and {v}")
        self._w[u][v] = weight

    def arc_weight(self, u: int, v: int) -> float:
        """``phi_G(u -> v)``: the arc's weight in G, or inf."""
        return self._arc_w.get((u, v), math.inf)

    def set_arc_weight(self, u: int, v: int, weight: float) -> None:
        """Overwrite the stored arc weight of ``u -> v``."""
        if (u, v) not in self._arc_w:
            raise IndexError_(f"({u} -> {v}) is not an arc of G")
        self._arc_w[(u, v)] = weight

    def is_arc(self, u: int, v: int) -> bool:
        """True if ``u -> v`` is an original arc of G."""
        return (u, v) in self._arc_w

    def support(self, u: int, v: int) -> int:
        """Number of directed Equation (<>) terms attaining ``phi(u -> v)``."""
        return self._sup[(u, v)]

    def set_support(self, u: int, v: int, value: int) -> None:
        """Overwrite the support of the directed shortcut ``u -> v``."""
        self._sup[(u, v)] = value

    def upward(self, u: int) -> List[int]:
        """Skeleton upward neighbors of *u*."""
        return self._up[u]

    def downward(self, u: int) -> List[int]:
        """Skeleton downward neighbors of *u*."""
        return self._down[u]

    def lower_endpoint(self, u: int, v: int) -> int:
        """The skeleton endpoint with the smaller rank."""
        return u if self._rank[u] < self._rank[v] else v

    def shortcut_arcs(self) -> Iterator[Arc]:
        """All directed shortcuts (two per skeleton shortcut)."""
        for u, nbrs in enumerate(self._w):
            for v in nbrs:
                yield (u, v)

    def scp_minus(self, u: int, v: int) -> Iterator[int]:
        """Shared vertices *t* of the skeleton's downward pairs."""
        rank = self._rank
        limit = min(rank[u], rank[v])
        down_u, down_v = self._down[u], self._down[v]
        if len(down_u) <= len(down_v):
            smaller, other = down_u, self._w[v]
        else:
            smaller, other = down_v, self._w[u]
        for t in smaller:
            if rank[t] < limit and t in other:
                yield t

    # ------------------------------------------------------------------
    def evaluate_arc(
        self, u: int, v: int, counter: Optional[OpCounter] = None
    ) -> Tuple[float, int]:
        """Directed Equation (<>) for ``u -> v``: ``(value, support)``."""
        ops = resolve_counter(counter)
        w_u = self._w[u]
        arc = self._arc_w.get((u, v), math.inf)
        best = arc
        support = 0 if math.isinf(best) else 1
        inspected = 0
        for t in self.scp_minus(u, v):
            inspected += 1
            candidate = w_u[t] + self._w[t][v]
            if candidate < best:
                best = candidate
                support = 1
            elif candidate == best and not math.isinf(candidate):
                support += 1
        ops.add("scp_minus_inspect", inspected)
        return best, support

    def recompute_arc(
        self, u: int, v: int, counter: Optional[OpCounter] = None
    ) -> float:
        """Recompute and store ``phi(u -> v)`` and its support."""
        value, support = self.evaluate_arc(u, v, counter)
        self._w[u][v] = value
        self._sup[(u, v)] = support
        return value

    def rebuild_supports(self) -> None:
        """Initialize supports for every directed shortcut."""
        for u, v in self.shortcut_arcs():
            value, support = self.evaluate_arc(u, v)
            if value != self._w[u][v]:
                raise IndexError_(
                    f"arc {u}->{v}: stored {self._w[u][v]}, equation {value}"
                )
            self._sup[(u, v)] = support

    def validate(self) -> None:
        """Check both directed weights and supports of every shortcut."""
        for u, v in self.shortcut_arcs():
            value, support = self.evaluate_arc(u, v)
            if value != self._w[u][v]:
                raise IndexError_(
                    f"arc {u}->{v}: stored {self._w[u][v]}, equation {value}"
                )
            if self._sup.get((u, v)) != support:
                raise IndexError_(
                    f"arc {u}->{v}: stored support {self._sup.get((u, v))}, "
                    f"actual {support}"
                )

    def __repr__(self) -> str:
        return (
            f"DirectedShortcutGraph(n={self.n}, "
            f"shortcuts={self.num_shortcuts})"
        )


def directed_ch_indexing(
    graph: DiRoadNetwork,
    ordering: Optional[Ordering] = None,
    counter: Optional[OpCounter] = None,
) -> DirectedShortcutGraph:
    """Build the directed CH index (Algorithm 1, one relax per direction).

    The ordering defaults to the minimum degree heuristic on the
    symmetrized graph; the skeleton therefore matches the undirected
    index of the same network.
    """
    skeleton = graph.symmetrized()
    if ordering is None:
        ordering = minimum_degree_ordering(skeleton)
    ops = resolve_counter(counter)
    rank = ordering.rank
    n = graph.n

    # weights[u][v] = phi(u -> v); initialized from arcs, inf for the
    # missing direction of one-way streets.
    weights: List[Dict[int, float]] = [{} for _ in range(n)]
    for u, v, w in graph.arcs():
        weights[u][v] = w
        weights[v].setdefault(u, math.inf)

    for u in ordering.order:
        higher = [v for v in weights[u] if rank[v] > rank[u]]
        for i, v in enumerate(higher):
            for w in higher[i + 1 :]:
                ops.add("contract_pair")
                # v -> u -> w and w -> u -> v.
                for a, b in ((v, w), (w, v)):
                    candidate = weights[a][u] + weights[u][b]
                    current = weights[a].get(b, math.inf)
                    if candidate < current:
                        weights[a][b] = candidate
                        weights[b].setdefault(a, math.inf)
                    elif b not in weights[a]:
                        weights[a][b] = math.inf
                        weights[b].setdefault(a, math.inf)

    index = DirectedShortcutGraph(
        ordering, weights, {(u, v): w for u, v, w in graph.arcs()}
    )
    index.rebuild_supports()
    return index


def directed_ch_distance(
    index: DirectedShortcutGraph,
    s: int,
    t: int,
    counter: Optional[OpCounter] = None,
) -> float:
    """``sd(s -> t)`` via forward-upward / backward-upward searches."""
    if not 0 <= s < index.n:
        raise QueryError(f"source {s} out of range [0, {index.n})")
    if not 0 <= t < index.n:
        raise QueryError(f"target {t} out of range [0, {index.n})")
    if s == t:
        return 0.0
    ops = resolve_counter(counter)
    rank = index.ordering.rank
    weights = index._w
    dist_f: Dict[int, float] = {s: 0.0}
    dist_b: Dict[int, float] = {t: 0.0}
    heap_f: List[Tuple[float, int]] = [(0.0, s)]
    heap_b: List[Tuple[float, int]] = [(0.0, t)]
    best = math.inf

    def expand(heap, dist_this, dist_other, forward: bool) -> None:
        nonlocal best
        d, u = heapq.heappop(heap)
        if d > dist_this.get(u, math.inf):
            return
        other = dist_other.get(u)
        if other is not None and d + other < best:
            best = d + other
        rank_u = rank[u]
        for v in weights[u]:
            if rank[v] <= rank_u:
                continue
            ops.add("query_relax")
            w = weights[u][v] if forward else weights[v][u]
            nd = d + w
            if nd < dist_this.get(v, math.inf):
                dist_this[v] = nd
                heapq.heappush(heap, (nd, v))

    while heap_f or heap_b:
        top_f = heap_f[0][0] if heap_f else math.inf
        top_b = heap_b[0][0] if heap_b else math.inf
        if min(top_f, top_b) >= best:
            break
        if top_f <= top_b:
            expand(heap_f, dist_f, dist_b, forward=True)
        else:
            expand(heap_b, dist_b, dist_f, forward=False)
    return best
