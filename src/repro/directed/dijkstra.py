"""Directed Dijkstra: the ground truth for the directed CH."""

from __future__ import annotations

import heapq
import math
from typing import List

from repro.directed.graph import DiRoadNetwork
from repro.errors import QueryError

__all__ = ["directed_dijkstra", "directed_distance"]


def directed_dijkstra(
    graph: DiRoadNetwork, source: int, reverse: bool = False
) -> List[float]:
    """Single-source directed shortest distances.

    With *reverse*, distances are measured **into** *source* (i.e. over
    reversed arcs) — what the backward half of a bidirectional directed
    query needs.
    """
    if not 0 <= source < graph.n:
        raise QueryError(f"source {source} out of range [0, {graph.n})")
    neighbors = graph.predecessors if reverse else graph.successors
    dist = [math.inf] * graph.n
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def directed_distance(graph: DiRoadNetwork, s: int, t: int) -> float:
    """``sd(s -> t)`` by a plain directed Dijkstra."""
    if s == t:
        if not 0 <= s < graph.n:
            raise QueryError(f"vertex {s} out of range [0, {graph.n})")
        return 0.0
    return directed_dijkstra(graph, s)[t]
