"""Directed H2H: hierarchical 2-hop labels for digraphs.

The tree decomposition is a property of the *skeleton* (the symmetrized
shortcut structure), so it carries over unchanged; what doubles is the
label: every vertex stores, per ancestor ``a``,

* ``dis_to(u)[depth(a)]  = sd(u -> a)``  and
* ``dis_from(u)[depth(a)] = sd(a -> u)``,

each satisfying a directed Equation (*) over the directed shortcut
weights::

    sd(u -> a) = min over v in nbr+(u) of  phi(u -> v) + sd(v -> a)
    sd(a -> u) = min over v in nbr+(u) of  sd(a -> v) + phi(v -> u)

with the inner ``sd`` values read from whichever of the two vertices is
deeper, via the directed Equation (nabla)::

    sd(v -> a) = dis_to(v)[depth(a)]    if depth(v) > depth(a)
                 dis_from(a)[depth(v)]  if depth(v) < depth(a)

A query is one position-array scan, as in the undirected case::

    sd(s -> t) = min over i in pos(lca) of dis_to(s)[i] + dis_from(t)[i]

The incremental algorithms mirror Algorithms 4-5 per direction.  The
dependents of a changed ``TO`` entry ``sd(u -> a)`` are the ``TO``
entries of ``nbr-(u)`` at the same ancestor depth and the ``FROM``
entries ``sd(u -> x)``-side of ``nbr-(a) ∩ des(u)``; symmetrically for
a changed ``FROM`` entry — the same two-loop structure as the
undirected IncH2H, with directions threaded through.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.directed.ch import DirectedShortcutGraph, directed_ch_indexing
from repro.directed.dch import (
    ArcUpdate,
    directed_dch_decrease,
    directed_dch_increase,
    trace_directed_call,
)
from repro.directed.graph import DiRoadNetwork
from repro.errors import IndexError_, QueryError
from repro.h2h.tree import TreeDecomposition
from repro.obs import names
from repro.obs.trace import span
from repro.order.ordering import Ordering
from repro.perf import kernels
from repro.utils.counters import OpCounter, resolve_counter
from repro.utils.heap import AddressableHeap

__all__ = [
    "DirectedH2HIndex",
    "directed_h2h_indexing",
    "directed_h2h_distance",
    "directed_inch2h_increase",
    "directed_inch2h_decrease",
]

#: Direction tags for super-shortcut entries.
TO, FROM = 0, 1


class DirectedH2HIndex:
    """The directed H2H index: tree + two distance/support matrix pairs."""

    def __init__(
        self,
        sc: DirectedShortcutGraph,
        tree: TreeDecomposition,
        dis: Tuple[np.ndarray, np.ndarray],
        sup: Tuple[np.ndarray, np.ndarray],
    ) -> None:
        self.sc = sc
        self.tree = tree
        self.dis = dis  # (dis_to, dis_from)
        self.sup = sup

    def clone(self) -> "DirectedH2HIndex":
        """An independent copy sharing the weight-independent tree."""
        return DirectedH2HIndex(
            self.sc.clone(),
            self.tree,
            (self.dis[TO].copy(), self.dis[FROM].copy()),
            (self.sup[TO].copy(), self.sup[FROM].copy()),
        )

    @property
    def backend(self) -> str:
        """Which representation backs this index (``dict`` here)."""
        return "dict"

    def prepare_write(self) -> None:
        """Maintenance pre-write hook; no-op on the dict backend."""

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.tree.n

    def num_super_shortcuts(self) -> int:
        """Directed super-shortcuts: two per (vertex, ancestor) pair."""
        return 2 * self.tree.num_super_shortcuts()

    # ------------------------------------------------------------------
    def _sd(self, direction: int, u: int, v: int, da: int) -> float:
        """Directed Equation (nabla): ``sd(v -> a)`` for TO, ``sd(a -> v)``
        for FROM, where *v* and ``a = anc(u)[da]`` are ancestors of *u*."""
        dv = int(self.tree.depth[v])
        if dv > da:
            return float(self.dis[direction][v, da])
        if dv < da:
            a = int(self.tree.anc[u][da])
            return float(self.dis[1 - direction][a, dv])
        return 0.0

    def evaluate_entry(
        self, direction: int, u: int, da: int,
        counter: Optional[OpCounter] = None,
    ) -> Tuple[float, int]:
        """Directed Equation (*): ``(value, support)`` of one entry."""
        ops = resolve_counter(counter)
        weights = self.sc._w
        best = math.inf
        count = 0
        terms = 0
        for v in self.sc.upward(u):
            terms += 1
            if direction == TO:
                candidate = weights[u][v] + self._sd(TO, u, v, da)
            else:
                candidate = self._sd(FROM, u, v, da) + weights[v][u]
            if candidate < best:
                best = candidate
                count = 1
            elif candidate == best and not math.isinf(candidate):
                count += 1
        ops.add("star_term", terms)
        return best, count

    def recompute_entry(
        self, direction: int, u: int, da: int,
        counter: Optional[OpCounter] = None,
    ) -> float:
        """Recompute and store one entry from the directed Equation (*)."""
        value, support = self.evaluate_entry(direction, u, da, counter)
        self.dis[direction][u, da] = value
        self.sup[direction][u, da] = support
        return value

    def validate(self) -> None:
        """Check every entry of both directions against Equation (*)."""
        depth = self.tree.depth
        for u in range(self.n):
            du = int(depth[u])
            for direction in (TO, FROM):
                if self.dis[direction][u, du] != 0.0:
                    raise IndexError_(f"dis[{direction}]({u})[{du}] must be 0")
                for da in range(du):
                    value, support = self.evaluate_entry(direction, u, da)
                    if self.dis[direction][u, da] != value:
                        raise IndexError_(
                            f"dis[{direction}]({u})[{da}] = "
                            f"{self.dis[direction][u, da]}, actual {value}"
                        )
                    if self.sup[direction][u, da] != support:
                        raise IndexError_(
                            f"sup[{direction}]({u})[{da}] = "
                            f"{self.sup[direction][u, da]}, actual {support}"
                        )

    def __repr__(self) -> str:
        return (
            f"DirectedH2HIndex(n={self.n}, "
            f"super_shortcuts={self.num_super_shortcuts()})"
        )


def directed_h2h_indexing(
    graph: DiRoadNetwork,
    ordering: Optional[Ordering] = None,
    counter: Optional[OpCounter] = None,
) -> DirectedH2HIndex:
    """Build the directed H2H index (top-down directed Equation (*),
    vectorized per vertex by :func:`repro.perf.kernels.directed_fill_vertex`)."""
    sc = directed_ch_indexing(graph, ordering, counter)
    tree = TreeDecomposition(sc)  # duck-typed: needs ordering/upward/downward
    n = tree.n
    height = tree.height
    depth = tree.depth
    dis_to = np.full((n, height), np.inf, dtype=np.float64)
    dis_from = np.full((n, height), np.inf, dtype=np.float64)
    sup_to = np.zeros((n, height), dtype=np.int32)
    sup_from = np.zeros((n, height), dtype=np.int32)
    index = DirectedH2HIndex(sc, tree, (dis_to, dis_from), (sup_to, sup_from))

    ops = resolve_counter(counter)
    for u in tree.top_down_order:
        kernels.directed_fill_vertex(index, u)
        ops.add("star_term", 2 * len(sc.upward(u)) * int(depth[u]))
    return index


def directed_h2h_distance(
    index: DirectedH2HIndex,
    s: int,
    t: int,
    counter: Optional[OpCounter] = None,
) -> float:
    """``sd(s -> t)`` read from the directed labels (one pos scan)."""
    n = index.n
    if not 0 <= s < n:
        raise QueryError(f"source {s} out of range [0, {n})")
    if not 0 <= t < n:
        raise QueryError(f"target {t} out of range [0, {n})")
    if s == t:
        return 0.0
    ops = resolve_counter(counter)
    a = index.tree.lca(s, t)
    positions = index.tree.pos[a]
    ops.add("pos_scan", len(positions))
    total = index.dis[TO][s, positions] + index.dis[FROM][t, positions]
    return float(np.min(total))


# ----------------------------------------------------------------------
# Incremental maintenance
# ----------------------------------------------------------------------

#: A queue entry: (direction, descendant vertex, ancestor depth).
Entry = Tuple[int, int, int]


def _seed_candidates(index, arc, weight):
    """Yield ``(direction, lower_endpoint)`` affected by a changed arc.

    An arc ``l -> h`` (skeleton lower endpoint ``l``) feeds the TO
    entries of ``l``; an arc ``h -> l`` feeds the FROM entries of ``l``.
    """
    u, v = arc
    low = index.sc.lower_endpoint(u, v)
    if u == low:
        yield TO, low, v  # candidates phi(l -> h) + sd(h -> a)
    else:
        yield FROM, low, u  # candidates sd(a -> h) + phi(h -> l)


def directed_inch2h_increase(
    index: DirectedH2HIndex,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter] = None,
) -> List[Tuple[Entry, float, float]]:
    """Directed IncH2H+ : weight increases through both label matrices."""
    with span(names.SPAN_DIRECTED_INCH2H_INCREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops_before = resolve_counter(counter).as_dict() if sp.active else None
        changed = _directed_inch2h_increase_impl(index, updates, counter)
        if sp.active:
            trace_directed_call(
                sp, len(updates), len(changed), resolve_counter(counter), ops_before
            )
    return changed


def _directed_inch2h_increase_impl(
    index: DirectedH2HIndex,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter],
) -> List[Tuple[Entry, float, float]]:
    ops = resolve_counter(counter)
    index.prepare_write()
    changed_arcs = directed_dch_increase(index.sc, updates, counter)

    sc = index.sc
    tree = index.tree
    rank = sc.ordering.rank
    depth = tree.depth
    weights = sc._w
    queue: AddressableHeap[Entry] = AddressableHeap()

    # Seeds: per changed arc, test every entry of the lower endpoint —
    # the whole ancestor slice at once with the directed Equation (*)
    # kernel (same weight + sd additions, bit-identical hit test).
    for arc, old_w, _new_w in changed_arcs:
        if math.isinf(old_w):
            continue
        for direction, u, via in _seed_candidates(index, arc, old_w):
            du = int(depth[u])
            ops.add("anc_scan", du)
            if du == 0:
                continue
            dis_dir = index.dis[direction]
            sup_dir = index.sup[direction]
            tmp = kernels.directed_candidate_row(index, direction, u, via, old_w)
            hits = np.nonzero((tmp == dis_dir[u, :du]) & ~np.isinf(tmp))[0]
            for da in hits:
                da = int(da)
                sup_dir[u, da] -= 1
                if sup_dir[u, da] == 0:
                    queue.push((direction, u, da), (-rank[u], direction, da))
                    ops.add("queue_push")

    changed: List[Tuple[Entry, float, float]] = []
    while queue:
        (direction, u, da), _ = queue.pop()
        ops.add("queue_pop")
        a = int(tree.anc[u][da])
        du = int(depth[u])
        dis_dir = index.dis[direction]
        old_val = float(dis_dir[u, da])
        if not math.isinf(old_val):
            sup_dir = index.sup[direction]
            # Loop 1: same-direction entries of downward neighbors.
            # (Infinite legs — one-way streets — support nothing.)
            for x in sc.downward(u):
                ops.add("dependent_inspect")
                leg = weights[x][u] if direction == TO else weights[u][x]
                if not math.isinf(leg) and leg + old_val == dis_dir[x, da]:
                    sup_dir[x, da] -= 1
                    if sup_dir[x, da] == 0:
                        queue.push((direction, x, da), (-rank[x], direction, da))
                        ops.add("queue_push")
            # Loop 2: opposite-position entries of nbr-(a) ∩ des(u):
            # a changed sd(u -> a) feeds sd(x -> ...) via phi(x -> a)?
            # No — it feeds the *same* direction read through the deeper
            # side: entries (x, depth(u)) of direction `direction` whose
            # candidate via a reads dis[1 - direction]... the candidate
            # via neighbor a of entry (x, du, direction) is
            #   TO:   phi(x -> a) + sd(a -> u) = phi(x -> a) + dis_FROM[u, da]
            #   FROM: sd(u -> a)... = dis_TO[u, da] + phi(a -> x)
            # so a changed (u, da, TO) feeds FROM entries and vice versa.
            other = 1 - direction
            dis_other = index.dis[other]
            sup_other = index.sup[other]
            for x in tree.down_in_descendants(a, u):
                ops.add("dependent_inspect")
                leg = weights[a][x] if direction == TO else weights[x][a]
                if not math.isinf(leg) and leg + old_val == dis_other[x, du]:
                    sup_other[x, du] -= 1
                    if sup_other[x, du] == 0:
                        queue.push((other, x, du), (-rank[x], other, du))
                        ops.add("queue_push")
        new_val = index.recompute_entry(direction, u, da, ops)
        if new_val != old_val:
            changed.append(((direction, u, da), old_val, new_val))
    return changed


def directed_inch2h_decrease(
    index: DirectedH2HIndex,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter] = None,
) -> List[Tuple[Entry, float, float]]:
    """Directed IncH2H- : weight decreases with on-the-fly supports."""
    with span(names.SPAN_DIRECTED_INCH2H_DECREASE) as sp:
        if sp.active and counter is None:
            counter = OpCounter()
        ops_before = resolve_counter(counter).as_dict() if sp.active else None
        changed = _directed_inch2h_decrease_impl(index, updates, counter)
        if sp.active:
            trace_directed_call(
                sp, len(updates), len(changed), resolve_counter(counter), ops_before
            )
    return changed


def _directed_inch2h_decrease_impl(
    index: DirectedH2HIndex,
    updates: Sequence[ArcUpdate],
    counter: Optional[OpCounter],
) -> List[Tuple[Entry, float, float]]:
    ops = resolve_counter(counter)
    index.prepare_write()
    changed_arcs = directed_dch_decrease(index.sc, updates, counter)

    sc = index.sc
    tree = index.tree
    rank = sc.ordering.rank
    depth = tree.depth
    weights = sc._w
    queue: AddressableHeap[Entry] = AddressableHeap()
    original: dict = {}
    # Seed memo: (direction, u, via) -> candidate array (du long), to
    # dedupe against later pop-loop evaluations at identical values.
    seed_rows: Dict[Tuple[int, int, int], np.ndarray] = {}

    for arc, _old_w, new_w in changed_arcs:
        for direction, u, via in _seed_candidates(index, arc, new_w):
            du = int(depth[u])
            if du == 0:
                continue
            ops.add("anc_scan", du)
            dis_dir = index.dis[direction]
            sup_dir = index.sup[direction]
            # Whole ancestor slice at once (directed Equation (*) kernel);
            # ties and improvements target distinct depths, so applying
            # them from one pre-write gather matches the per-depth order.
            row = kernels.directed_candidate_row(index, direction, u, via, new_w)
            seed_rows[(direction, u, via)] = row
            current_row = dis_dir[u, :du]
            better = np.nonzero(row < current_row)[0]
            ties = np.nonzero((row == current_row) & ~np.isinf(row))[0]
            if len(ties):
                sup_dir[u, ties] += 1
            for da in better:
                da = int(da)
                original.setdefault((direction, u, da), float(dis_dir[u, da]))
                dis_dir[u, da] = row[da]
                sup_dir[u, da] = 1
                if (direction, u, da) not in queue:
                    queue.push((direction, u, da),
                               (-rank[u], direction, da))
                    ops.add("queue_push")

    while queue:
        (direction, u, da), _ = queue.pop()
        ops.add("queue_pop")
        a = int(tree.anc[u][da])
        du = int(depth[u])
        dis_dir = index.dis[direction]
        val = float(dis_dir[u, da])
        if math.isinf(val):
            continue
        sup_dir = index.sup[direction]
        for x in sc.downward(u):
            ops.add("dependent_inspect")
            leg = weights[x][u] if direction == TO else weights[u][x]
            candidate = leg + val
            seed_row = seed_rows.get((direction, x, u))
            if seed_row is not None and seed_row[da] == candidate:
                continue
            current = dis_dir[x, da]
            if candidate < current:
                original.setdefault((direction, x, da), float(current))
                dis_dir[x, da] = candidate
                sup_dir[x, da] = 1
                if (direction, x, da) not in queue:
                    queue.push((direction, x, da), (-rank[x], direction, da))
                    ops.add("queue_push")
            elif candidate == current and not math.isinf(candidate):
                sup_dir[x, da] += 1
        other = 1 - direction
        dis_other = index.dis[other]
        sup_other = index.sup[other]
        for x in tree.down_in_descendants(a, u):
            ops.add("dependent_inspect")
            leg = weights[a][x] if direction == TO else weights[x][a]
            candidate = leg + val
            seed_row = seed_rows.get((other, x, a))
            if seed_row is not None and seed_row[du] == candidate:
                continue
            current = dis_other[x, du]
            if candidate < current:
                original.setdefault((other, x, du), float(current))
                dis_other[x, du] = candidate
                sup_other[x, du] = 1
                if (other, x, du) not in queue:
                    queue.push((other, x, du), (-rank[x], other, du))
                    ops.add("queue_push")
            elif candidate == current and not math.isinf(candidate):
                sup_other[x, du] += 1

    return [
        (entry, old, float(index.dis[entry[0]][entry[1], entry[2]]))
        for entry, old in original.items()
        if index.dis[entry[0]][entry[1], entry[2]] != old
    ]
